//! Graph partitioning (paper §7 future work).
//!
//! The paper's conclusion proposes "the integration of index-batching with
//! graph partitioning, potentially yielding further speedups at a potential
//! cost to accuracy" — the approach of Mallick et al. \[37\], who train one
//! DCRNN per spatial partition. This module provides the graph side of that
//! integration: partitioners, cut-quality metrics, and halo-augmented
//! induced subgraphs. The training-side integration lives in
//! `pgt-index::partitioned`.
//!
//! Four partitioners cover the design space:
//! - [`Partitioning::contiguous`] — index blocks; the trivial baseline.
//! - [`Partitioning::coordinate_bisection`] — recursive coordinate
//!   bisection over sensor positions (spatially compact, well balanced);
//!   sensor networks embed in the plane, so geometry is a strong proxy for
//!   the Gaussian-kernel edge structure.
//! - [`Partitioning::greedy_bfs`] — seeded region growing over the actual
//!   weighted edges (topology-aware, fast, but jagged where regions
//!   collide).
//! - [`Partitioning::multilevel`] — METIS-flavored multilevel scheme:
//!   heavy-edge-matching coarsening, seeded initial partitions on the
//!   coarsest graph, then uncoarsening with balance-constrained greedy
//!   KL/FM boundary refinement. The quality partitioner every consumer
//!   defaults to via [`PartitionerKind`].
//!
//! Quality is scored by [`HaloCostModel`], which converts a partitioning's
//! *cut neighbors* into the modeled bytes the distributed planes actually
//! pay (`cut_neighbors × (2·horizon − 1) × row_bytes`) — the objective the
//! multilevel refinement minimizes, rather than raw edge cut.

use crate::adjacency::Adjacency;
use std::collections::VecDeque;
use std::ops::Range;

pub mod incremental;

pub use incremental::{
    GraphDelta, IncrementalConfig, IncrementalPartitioner, RepairStats, RepartitionPolicy,
    SparseGraph,
};

/// An assignment of every graph node to one of `k` parts.
#[derive(Debug, Clone)]
pub struct Partitioning {
    assignment: Vec<usize>,
    k: usize,
}

impl Partitioning {
    /// Wrap an explicit assignment (must reference parts `< k` only).
    pub fn from_assignment(assignment: Vec<usize>, k: usize) -> Self {
        assert!(k > 0, "need at least one part");
        assert!(
            assignment.iter().all(|&p| p < k),
            "assignment references a part >= k"
        );
        Partitioning { assignment, k }
    }

    /// Contiguous index blocks: nodes `[i·n/k, (i+1)·n/k)` form part `i`.
    pub fn contiguous(n: usize, k: usize) -> Self {
        assert!(k > 0 && k <= n, "need 0 < k <= n");
        let per = n.div_ceil(k);
        let assignment = (0..n).map(|i| (i / per).min(k - 1)).collect();
        Partitioning { assignment, k }
    }

    /// Recursive coordinate bisection: repeatedly split along the widest
    /// spatial axis at a rank proportional to the part counts. Produces
    /// spatially compact, near-perfectly balanced parts.
    pub fn coordinate_bisection(coords: &[(f32, f32)], k: usize) -> Self {
        assert!(k > 0 && k <= coords.len(), "need 0 < k <= n");
        let mut assignment = vec![0usize; coords.len()];
        let mut ids: Vec<usize> = (0..coords.len()).collect();
        rcb(coords, &mut ids, k, 0, &mut assignment);
        Partitioning { assignment, k }
    }

    /// Seeded BFS region growing over the weighted edges: `k` seeds are
    /// spread greedily (farthest-first over hop distance), then regions
    /// claim unassigned neighbors round-robin, capped at `⌈n/k⌉` nodes.
    /// Stranded nodes (disconnected from every capped region) fall back to
    /// the smallest part.
    ///
    /// Disconnected graphs are supported: unreachable nodes rank as
    /// "farthest of all" during seed spreading, so every component gets a
    /// seed before any component gets two. When `k > n` the first `n`
    /// parts hold one node each and the remaining parts are **empty** —
    /// callers that build per-part workers must tolerate empty parts
    /// (`pgt_index::partitioned` skips them).
    ///
    /// ```
    /// use st_graph::{generators, Partitioning};
    ///
    /// let net = generators::highway_corridor(12, 1, 7);
    /// let p = Partitioning::greedy_bfs(&net.adjacency, 3);
    /// assert_eq!(p.num_parts(), 3);
    /// // Every node is assigned to exactly one part.
    /// assert_eq!(p.part_sizes().iter().sum::<usize>(), 12);
    /// // Region growing respects the ⌈n/k⌉ cap up to stranded fallbacks.
    /// assert!(p.part_sizes().iter().all(|&s| s > 0));
    /// ```
    pub fn greedy_bfs(adj: &Adjacency, k: usize) -> Self {
        let n = adj.num_nodes();
        assert!(k > 0, "need at least one part");
        if k > n {
            // One node per part; parts n..k stay empty (documented above).
            return Partitioning {
                assignment: (0..n).collect(),
                k,
            };
        }
        let neighbors = undirected_neighbors(adj);
        let seeds = farthest_first_seeds(&neighbors, k);
        let cap = n.div_ceil(k);
        let mut assignment = vec![usize::MAX; n];
        let mut sizes = vec![0usize; k];
        let mut frontiers: Vec<VecDeque<usize>> =
            seeds.iter().map(|&s| VecDeque::from([s])).collect();
        for (p, &s) in seeds.iter().enumerate() {
            assignment[s] = p;
            sizes[p] = 1;
        }
        let mut progress = true;
        while progress {
            progress = false;
            for p in 0..k {
                if sizes[p] >= cap {
                    continue;
                }
                while let Some(u) = frontiers[p].pop_front() {
                    let mut claimed = false;
                    for &v in &neighbors[u] {
                        if assignment[v] == usize::MAX {
                            assignment[v] = p;
                            sizes[p] += 1;
                            frontiers[p].push_back(v);
                            claimed = true;
                            progress = true;
                            if sizes[p] >= cap {
                                break;
                            }
                        }
                    }
                    if claimed {
                        // Revisit u later: it may still have unassigned
                        // neighbors once other regions hit their caps.
                        frontiers[p].push_back(u);
                        break;
                    }
                }
            }
        }
        // Stranded nodes: put each in the currently smallest part.
        for a in assignment.iter_mut() {
            if *a == usize::MAX {
                let p = (0..k).min_by_key(|&p| sizes[p]).unwrap();
                *a = p;
                sizes[p] += 1;
            }
        }
        Partitioning { assignment, k }
    }

    /// Multilevel partitioning with default knobs (see
    /// [`MultilevelConfig`]): heavy-edge-matching coarsening, seeded
    /// initial partitions on the coarsest graph, and balance-constrained
    /// greedy KL/FM boundary refinement during uncoarsening, scored by the
    /// [`HaloCostModel`] rather than raw edge cut.
    ///
    /// ```
    /// use st_graph::partition::{HaloCostModel, Partitioning};
    /// use st_graph::generators;
    ///
    /// let net = generators::highway_corridor(24, 1, 7);
    /// let ml = Partitioning::multilevel(&net.adjacency, 4);
    /// let greedy = Partitioning::greedy_bfs(&net.adjacency, 4);
    ///
    /// // Valid balanced partition: all nodes covered, no empty part.
    /// assert_eq!(ml.part_sizes().iter().sum::<usize>(), 24);
    /// assert!(ml.part_sizes().iter().all(|&s| s > 0));
    ///
    /// // Modeled halo traffic never loses to the greedy baseline.
    /// let cost = HaloCostModel::new(12, 2);
    /// assert!(cost.halo_bytes(&net.adjacency, &ml)
    ///     <= cost.halo_bytes(&net.adjacency, &greedy));
    /// ```
    pub fn multilevel(adj: &Adjacency, k: usize) -> Self {
        Self::multilevel_with(adj, k, &MultilevelConfig::default())
    }

    /// [`Partitioning::multilevel`] with explicit knobs.
    ///
    /// The scheme, level by level:
    /// 1. **Coarsen** — repeated heavy-edge matching: each node pairs with
    ///    its heaviest still-unmatched neighbor and the pair contracts to
    ///    one coarse node (edge weights sum, node weights accumulate),
    ///    until the graph is small or matching stops shrinking it.
    /// 2. **Initial partition** — [`MultilevelConfig::initial_seeds`]
    ///    seeded weighted region-growings on the coarsest graph, each
    ///    refined in place; the candidate with the smallest cut wins.
    /// 3. **Uncoarsen** — project the assignment back level by level,
    ///    running [`MultilevelConfig::refine_passes`] greedy KL/FM passes
    ///    at every level: boundary nodes move to the neighboring part of
    ///    highest positive edge-cut gain, subject to the
    ///    [`MultilevelConfig::balance`] cap, so the cut is monotonically
    ///    non-increasing (Fiedler-free — no spectral machinery).
    /// 4. **Select** — at the finest level every refinement snapshot is
    ///    scored by the config's [`HaloCostModel`] and the best-scoring
    ///    assignment (including the unrefined projection) is returned, so
    ///    refinement can never worsen the modeled halo traffic.
    ///
    /// Like [`Partitioning::greedy_bfs`], `k > n` yields one node per part
    /// with the remaining parts empty, and disconnected graphs are
    /// handled by seeding every component.
    pub fn multilevel_with(adj: &Adjacency, k: usize, cfg: &MultilevelConfig) -> Self {
        let n = adj.num_nodes();
        assert!(k > 0, "need at least one part");
        if k >= n {
            return Partitioning {
                assignment: (0..n).collect(),
                k,
            };
        }
        if k == 1 {
            return Partitioning {
                assignment: vec![0; n],
                k,
            };
        }

        // --- 1. Coarsen by heavy-edge matching. -------------------------
        let mut levels = vec![CoarseGraph::from_adjacency(adj)];
        let stop_at = cfg.coarsest.max(4 * k);
        loop {
            let cur = levels.last().unwrap();
            if cur.len() <= stop_at {
                break;
            }
            let (coarse, map) = cur.contract_heavy_edge_matching();
            if coarse.len() as f64 > cur.len() as f64 * 0.95 {
                break; // matching stopped shrinking the graph
            }
            let mut coarse = coarse;
            coarse.fine_to_coarse = map;
            levels.push(coarse);
        }

        // --- 2. Seeded initial partitions on the coarsest graph. --------
        // Candidates are raw region growings selected by cut weight —
        // deliberately independent of `refine_passes`, so a refined run
        // and an unrefined run share the same starting point and the
        // final halo-score selection makes refinement provably monotone.
        let coarsest = levels.last().unwrap();
        let cap = balance_cap(n, k, cfg.balance);
        let mut best: Option<(f64, Vec<usize>)> = None;
        for seed in 0..cfg.initial_seeds.max(1) {
            let cand = coarsest.grow_regions(k, cap, seed as u64);
            let cut = coarsest.cut_weight(&cand);
            if best.as_ref().is_none_or(|(b, _)| cut < *b) {
                best = Some((cut, cand));
            }
        }
        let mut assignment = best.expect("at least one seed").1;

        // --- 3. Uncoarsen with greedy KL/FM boundary refinement. --------
        // `unrefined` projects the initial partition straight down with no
        // refinement — the baseline the final halo-score selection may
        // never lose to.
        let mut unrefined = assignment.clone();
        for li in (0..levels.len()).rev() {
            let level = &levels[li];
            if li < levels.len() - 1 {
                let map = &levels[li + 1].fine_to_coarse;
                assignment = project(&assignment, map);
                unrefined = project(&unrefined, map);
            }
            if li > 0 {
                for _ in 0..cfg.refine_passes {
                    if !level.fm_pass(&mut assignment, k, cap) {
                        break;
                    }
                }
            }
        }

        // --- 4. Finest level: refine, score every snapshot by modeled ---
        // halo bytes, and keep the best seen (unrefined projection
        // included, so refinement is monotone in the halo-cost score).
        let finest = &levels[0];
        rebalance(finest, &mut assignment, k, cap);
        rebalance(finest, &mut unrefined, k, cap);
        let score = |a: &[usize]| {
            cfg.cost.halo_bytes(
                adj,
                &Partitioning {
                    assignment: a.to_vec(),
                    k,
                },
            )
        };
        let mut winner = (score(&unrefined), unrefined);
        let s = score(&assignment);
        if s < winner.0 {
            winner = (s, assignment.clone());
        }
        for _ in 0..cfg.refine_passes {
            if !finest.fm_pass(&mut assignment, k, cap) {
                break;
            }
            let s = score(&assignment);
            if s < winner.0 {
                winner = (s, assignment.clone());
            }
        }
        Partitioning {
            assignment: winner.1,
            k,
        }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// The part of node `i`.
    pub fn part_of(&self, i: usize) -> usize {
        self.assignment[i]
    }

    /// The full assignment slice.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Node ids owned by part `p`, ascending.
    pub fn part_nodes(&self, p: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == p).then_some(i))
            .collect()
    }

    /// Node ids of **every** part in one O(n) pass — use this instead of
    /// calling [`Partitioning::part_nodes`] in a loop over parts, which
    /// rescans the assignment `k` times (O(n·k)). Each inner list is
    /// ascending, exactly as `part_nodes` returns it (equivalence-tested).
    pub fn nodes_by_part(&self) -> Vec<Vec<usize>> {
        let mut by_part: Vec<Vec<usize>> = vec![Vec::new(); self.k];
        for (i, &p) in self.assignment.iter().enumerate() {
            by_part[p].push(i);
        }
        by_part
    }

    /// Sizes of every part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &a in &self.assignment {
            sizes[a] += 1;
        }
        sizes
    }

    /// Load imbalance: `max part size / (n / k)` (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        max / (self.num_nodes() as f64 / self.k as f64)
    }

    /// Total weight of edges whose endpoints live in different parts.
    pub fn edge_cut_weight(&self, adj: &Adjacency) -> f64 {
        let n = adj.num_nodes();
        let mut cut = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let w = adj.weight(i, j);
                if w > 0.0 && self.assignment[i] != self.assignment[j] {
                    cut += w as f64;
                }
            }
        }
        cut
    }

    /// Total **cut neighbors** across parts: `Σ_p |halo₁(p)|`, the number
    /// of (node, foreign part) adjacency pairs — each one a node some part
    /// must replicate as depth-1 halo. This is the count the distributed
    /// planes pay `2·horizon − 1` reads per ([`HaloCostModel`]), which is
    /// why the multilevel refinement minimizes it instead of raw edge cut:
    /// many light cut edges into the *same* neighbor cost one replica,
    /// while one cut edge per distinct neighbor costs a replica each.
    pub fn cut_neighbors(&self, adj: &Adjacency) -> usize {
        let neighbors = undirected_neighbors(adj);
        let mut count = 0usize;
        let mut seen = vec![usize::MAX; self.k];
        for (v, nbrs) in neighbors.iter().enumerate() {
            // v is replicated once into every foreign part it touches.
            seen.iter_mut().for_each(|s| *s = usize::MAX);
            for &u in nbrs {
                let p = self.assignment[u];
                if p != self.assignment[v] && seen[p] != v {
                    seen[p] = v;
                    count += 1;
                }
            }
        }
        count
    }

    /// [`Partitioning::cut_neighbors`] over a [`SparseGraph`] — O(E)
    /// instead of the dense O(n²) rescan, for city-scale graphs where the
    /// dense adjacency is never materialized. Equivalence-tested against
    /// the dense count on graphs that exist in both representations.
    pub fn cut_neighbors_sparse(&self, g: &SparseGraph) -> usize {
        assert_eq!(g.num_nodes(), self.num_nodes(), "graph/partition mismatch");
        let mut count = 0usize;
        let mut seen = vec![usize::MAX; self.k];
        for v in 0..g.num_nodes() {
            seen.iter_mut().for_each(|s| *s = usize::MAX);
            for &(u, _) in g.neighbors(v) {
                let p = self.assignment[u];
                if p != self.assignment[v] && seen[p] != v {
                    seen[p] = v;
                    count += 1;
                }
            }
        }
        count
    }

    /// Fraction of (weighted) edges cut by the partitioning.
    pub fn cut_fraction(&self, adj: &Adjacency) -> f64 {
        let n = adj.num_nodes();
        let mut total = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let w = adj.weight(i, j);
                if w > 0.0 && i != j {
                    total += w as f64;
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            self.edge_cut_weight(adj) / total
        }
    }

    /// The halo-augmented induced subgraph of part `p`: owned nodes first,
    /// then halo nodes within `halo_depth` hops (the neighbors partition-
    /// boundary diffusion convolutions need — depth should be ≥ the model's
    /// diffusion steps K).
    pub fn subgraph(&self, adj: &Adjacency, p: usize, halo_depth: usize) -> Subgraph {
        subgraph_from_owned(adj, p, self.part_nodes(p), halo_depth)
    }

    /// All `k` halo-augmented subgraphs. Owned-node lists come from one
    /// [`Partitioning::nodes_by_part`] pass instead of `k` full
    /// assignment rescans.
    pub fn subgraphs(&self, adj: &Adjacency, halo_depth: usize) -> Vec<Subgraph> {
        self.nodes_by_part()
            .into_iter()
            .enumerate()
            .map(|(p, owned)| subgraph_from_owned(adj, p, owned, halo_depth))
            .collect()
    }

    /// Replication factor: `Σ_p |owned_p ∪ halo_p| / n` — how much node
    /// (and therefore feature) duplication the partitioned layout pays.
    pub fn replication_factor(&self, adj: &Adjacency, halo_depth: usize) -> f64 {
        let total: usize = self
            .subgraphs(adj, halo_depth)
            .iter()
            .map(|s| s.global_ids.len())
            .sum();
        total as f64 / self.num_nodes() as f64
    }
}

/// One part's halo-augmented induced subgraph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Which part this is.
    pub part: usize,
    /// The first `owned_count` entries of `global_ids` are owned; the rest
    /// are halo (read-only context for boundary convolutions).
    pub owned_count: usize,
    /// Local id → global node id.
    pub global_ids: Vec<usize>,
    /// Induced weighted adjacency over `global_ids` (local indexing).
    pub adjacency: Adjacency,
}

impl Subgraph {
    /// Number of local nodes (owned + halo).
    pub fn num_nodes(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of halo nodes.
    pub fn halo_count(&self) -> usize {
        self.global_ids.len() - self.owned_count
    }

    /// Owned global ids.
    pub fn owned_global_ids(&self) -> &[usize] {
        &self.global_ids[..self.owned_count]
    }
}

/// Models the halo traffic a partitioning exposes during distributed
/// training/serving: every cut neighbor (a node some part must replicate)
/// costs `2·horizon − 1` entry reads — the window span both the
/// partitioned trainer and the generalized mode's entry halo pay per
/// boundary — of `row_bytes` each.
///
/// This is the objective [`Partitioning::multilevel`] refines toward and
/// the score the `ablation_partition` bench sweeps, because edge-cut
/// *weight* is the wrong proxy: a part that cuts ten light edges into one
/// neighbor replicates one row, while one that cuts one edge each into ten
/// neighbors replicates ten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloCostModel {
    /// Forecast horizon `h`: each cut neighbor's row is read for the
    /// `2·h − 1` entries every training window spans.
    pub horizon: usize,
    /// Bytes per (node, entry) feature row (`features × 4` for f32).
    pub row_bytes: u64,
}

impl HaloCostModel {
    /// Cost model for a `horizon`-step forecast over `features` f32
    /// features per node.
    pub fn new(horizon: usize, features: usize) -> Self {
        HaloCostModel {
            horizon,
            row_bytes: (features * 4) as u64,
        }
    }

    /// Entry reads per cut neighbor: `2·horizon − 1` (input window plus
    /// label window, sharing the boundary entry).
    pub fn reads_per_cut_neighbor(&self) -> u64 {
        (2 * self.horizon).saturating_sub(1) as u64
    }

    /// Modeled halo bytes of `p` over `adj`:
    /// `cut_neighbors × (2·horizon − 1) × row_bytes`.
    pub fn halo_bytes(&self, adj: &Adjacency, p: &Partitioning) -> u64 {
        p.cut_neighbors(adj) as u64 * self.reads_per_cut_neighbor() * self.row_bytes
    }

    /// [`HaloCostModel::halo_bytes`] over a [`SparseGraph`] — O(E), for
    /// graphs too large to densify.
    pub fn halo_bytes_sparse(&self, g: &SparseGraph, p: &Partitioning) -> u64 {
        p.cut_neighbors_sparse(g) as u64 * self.reads_per_cut_neighbor() * self.row_bytes
    }
}

impl Default for HaloCostModel {
    /// A 12-step horizon (the paper's standard forecast length) over one
    /// f32 feature.
    fn default() -> Self {
        HaloCostModel::new(12, 1)
    }
}

/// Knobs of [`Partitioning::multilevel_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultilevelConfig {
    /// Balance tolerance: no part may exceed `balance × ⌈n/k⌉` nodes
    /// (weights, at coarse levels).
    pub balance: f64,
    /// Stop coarsening once the graph has at most this many nodes (the
    /// floor `4·k` always applies).
    pub coarsest: usize,
    /// Seeded initial-partition candidates tried on the coarsest graph.
    pub initial_seeds: usize,
    /// Greedy KL/FM refinement passes per level (0 disables refinement —
    /// the knob the monotonicity proptest exercises).
    pub refine_passes: usize,
    /// The halo cost model refinement snapshots are scored by.
    pub cost: HaloCostModel,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            balance: 1.15,
            coarsest: 32,
            initial_seeds: 4,
            refine_passes: 4,
            cost: HaloCostModel::default(),
        }
    }
}

impl MultilevelConfig {
    /// Defaults with the halo cost model tuned to a specific horizon.
    pub fn for_horizon(horizon: usize) -> Self {
        MultilevelConfig {
            cost: HaloCostModel::new(horizon.max(1), 1),
            ..Default::default()
        }
    }
}

/// The partitioner choice consumers thread through their configs
/// (`pgt_index::DistConfig::partitioner`, `st_serve::ServeConfig`
/// likewise): one tag per algorithm, run via [`PartitionerKind::partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// Contiguous index blocks (the trivial baseline).
    Contiguous,
    /// Recursive coordinate bisection (requires sensor coordinates; falls
    /// back to [`PartitionerKind::GreedyBfs`] without them).
    CoordinateBisection,
    /// Seeded BFS region growing over the weighted edges.
    GreedyBfs,
    /// The multilevel partitioner — the quality default.
    Multilevel,
}

impl PartitionerKind {
    /// Run the chosen partitioner over `adj` (and `coords` when the
    /// algorithm is geometric). `horizon` parameterizes the
    /// [`HaloCostModel`] the multilevel refinement scores against.
    pub fn partition(
        &self,
        adj: &Adjacency,
        coords: Option<&[(f32, f32)]>,
        k: usize,
        horizon: usize,
    ) -> Partitioning {
        match self {
            PartitionerKind::Contiguous => Partitioning::contiguous(adj.num_nodes(), k),
            PartitionerKind::CoordinateBisection => match coords {
                Some(c) => Partitioning::coordinate_bisection(c, k),
                None => Partitioning::greedy_bfs(adj, k),
            },
            PartitionerKind::GreedyBfs => Partitioning::greedy_bfs(adj, k),
            PartitionerKind::Multilevel => {
                Partitioning::multilevel_with(adj, k, &MultilevelConfig::for_horizon(horizon))
            }
        }
    }

    /// The generalized mode's **entry-timeline** split: `total` time
    /// entries over `world` ranks. The timeline is a uniform path graph,
    /// and on a uniform path every balanced k-way optimum — by edge cut
    /// and by halo cost alike — is the contiguous split, so every kind
    /// canonicalizes to the same ragged contiguous ranges (bit-identical
    /// to `st_dist::shuffle::contiguous_partition`). The choice still
    /// flows through here so graph-partitioned planes and entry-
    /// partitioned planes read one config knob.
    pub fn entry_ranges(&self, total: usize, world: usize) -> Vec<Range<usize>> {
        assert!(world > 0, "need at least one rank");
        let base = total / world;
        let rem = total % world;
        (0..world)
            .map(|rank| {
                let start = rank * base + rank.min(rem);
                start..start + base + usize::from(rank < rem)
            })
            .collect()
    }
}

/// One coarsening level: undirected weighted neighbor lists plus node
/// weights (the number of finest-level nodes each coarse node stands for).
struct CoarseGraph {
    /// Per-node accumulated fine-node count.
    node_weight: Vec<usize>,
    /// Undirected neighbor lists `(neighbor, summed weight)`.
    adj: Vec<Vec<(usize, f32)>>,
    /// For levels produced by contraction: finer-level node → this level's
    /// node. Empty at the finest level.
    fine_to_coarse: Vec<usize>,
}

impl CoarseGraph {
    fn from_adjacency(adj: &Adjacency) -> Self {
        let n = adj.num_nodes();
        let mut lists = vec![Vec::new(); n];
        for (i, list) in lists.iter_mut().enumerate() {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = adj.weight(i, j) + adj.weight(j, i);
                if w > 0.0 {
                    list.push((j, w));
                }
            }
        }
        CoarseGraph {
            node_weight: vec![1; n],
            adj: lists,
            fine_to_coarse: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.node_weight.len()
    }

    /// Heavy-edge matching + contraction: each unmatched node pairs with
    /// its heaviest unmatched neighbor; pairs (and leftover singletons)
    /// become the next level's nodes.
    fn contract_heavy_edge_matching(&self) -> (CoarseGraph, Vec<usize>) {
        let n = self.len();
        let mut mate = vec![usize::MAX; n];
        for u in 0..n {
            if mate[u] != usize::MAX {
                continue;
            }
            let heaviest = self.adj[u]
                .iter()
                .filter(|&&(v, _)| mate[v] == usize::MAX && v != u)
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
            match heaviest {
                Some(&(v, _)) => {
                    mate[u] = v;
                    mate[v] = u;
                }
                None => mate[u] = u,
            }
        }
        // Coarse ids in discovery order keep the contraction deterministic.
        let mut coarse_of = vec![usize::MAX; n];
        let mut next = 0usize;
        for u in 0..n {
            if coarse_of[u] == usize::MAX {
                coarse_of[u] = next;
                let m = mate[u];
                if m != u && m != usize::MAX {
                    coarse_of[m] = next;
                }
                next += 1;
            }
        }
        let mut node_weight = vec![0usize; next];
        let mut maps: Vec<std::collections::BTreeMap<usize, f64>> = vec![Default::default(); next];
        for u in 0..n {
            let cu = coarse_of[u];
            node_weight[cu] += self.node_weight[u];
            for &(v, w) in &self.adj[u] {
                let cv = coarse_of[v];
                if cu != cv {
                    // Each undirected fine edge is visited from both ends;
                    // halve so coarse weights equal the summed fine weights.
                    *maps[cu].entry(cv).or_insert(0.0) += w as f64 / 2.0;
                }
            }
        }
        let adj = maps
            .into_iter()
            .map(|m| m.into_iter().map(|(v, w)| (v, w as f32)).collect())
            .collect();
        (
            CoarseGraph {
                node_weight,
                adj,
                fine_to_coarse: Vec::new(),
            },
            coarse_of,
        )
    }

    /// Seeded weighted region growing (the coarse analogue of
    /// [`Partitioning::greedy_bfs`]): farthest-first seeds rotated by
    /// `seed`, regions claim neighbors round-robin under the weight cap,
    /// stranded nodes fall back to the lightest part.
    fn grow_regions(&self, k: usize, cap: usize, seed: u64) -> Vec<usize> {
        let n = self.len();
        // Prime stride: distinct starts for every candidate seed unless n
        // is a multiple of 7919 (far beyond the coarsest-graph sizes).
        let start = (seed as usize * 7919) % n;
        let mut seeds = vec![start];
        let mut dist = self.hop_distances(start);
        while seeds.len() < k.min(n) {
            let next = (0..n)
                .filter(|i| !seeds.contains(i))
                .max_by_key(|&i| dist[i])
                .expect("k <= n leaves a candidate");
            seeds.push(next);
            let d2 = self.hop_distances(next);
            for i in 0..n {
                dist[i] = dist[i].min(d2[i]);
            }
        }
        let mut assignment = vec![usize::MAX; n];
        let mut weight = vec![0usize; k];
        let mut frontiers: Vec<VecDeque<usize>> =
            seeds.iter().map(|&s| VecDeque::from([s])).collect();
        frontiers.resize(k, VecDeque::new());
        for (p, &s) in seeds.iter().enumerate() {
            assignment[s] = p;
            weight[p] = self.node_weight[s];
        }
        let mut progress = true;
        while progress {
            progress = false;
            for p in 0..k {
                if weight[p] >= cap {
                    continue;
                }
                while let Some(u) = frontiers[p].pop_front() {
                    let mut claimed = false;
                    for &(v, _) in &self.adj[u] {
                        if assignment[v] == usize::MAX && weight[p] + self.node_weight[v] <= cap {
                            assignment[v] = p;
                            weight[p] += self.node_weight[v];
                            frontiers[p].push_back(v);
                            claimed = true;
                            progress = true;
                            if weight[p] >= cap {
                                break;
                            }
                        }
                    }
                    if claimed {
                        frontiers[p].push_back(u);
                        break;
                    }
                }
            }
        }
        for (u, a) in assignment.iter_mut().enumerate() {
            if *a == usize::MAX {
                let p = (0..k).min_by_key(|&p| weight[p]).unwrap();
                *a = p;
                weight[p] += self.node_weight[u];
            }
        }
        assignment
    }

    fn hop_distances(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.len()];
        dist[src] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for &(v, _) in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Total weight of cut edges under `assignment`.
    fn cut_weight(&self, assignment: &[usize]) -> f64 {
        let mut cut = 0.0f64;
        for (u, list) in self.adj.iter().enumerate() {
            for &(v, w) in list {
                if u < v && assignment[u] != assignment[v] {
                    cut += w as f64;
                }
            }
        }
        cut
    }

    /// One greedy KL/FM pass: repeatedly apply the single best
    /// strictly-positive-gain boundary move that respects the balance cap
    /// and leaves no part empty. Returns whether anything moved. Strictly
    /// positive gains keep the edge cut monotone, so passes terminate
    /// without FM's lock/rollback machinery.
    fn fm_pass(&self, assignment: &mut [usize], k: usize, cap: usize) -> bool {
        let n = self.len();
        let mut part_weight = vec![0usize; k];
        let mut part_count = vec![0usize; k];
        for u in 0..n {
            part_weight[assignment[u]] += self.node_weight[u];
            part_count[assignment[u]] += 1;
        }
        let mut moved_any = false;
        // Bounded by the strictly-decreasing cut; n·k steps is a generous
        // safety valve against float-precision stalls.
        for _ in 0..n * k {
            let mut best: Option<(f32, usize, usize)> = None;
            for u in 0..n {
                let from = assignment[u];
                if part_count[from] <= 1 {
                    continue;
                }
                // Connectivity of u to each part.
                let mut conn = vec![0.0f32; k];
                for &(v, w) in &self.adj[u] {
                    conn[assignment[v]] += w;
                }
                for to in 0..k {
                    if to == from || part_weight[to] + self.node_weight[u] > cap {
                        continue;
                    }
                    let gain = conn[to] - conn[from];
                    if gain > 1e-6 && best.as_ref().is_none_or(|(g, _, _)| gain > *g) {
                        best = Some((gain, u, to));
                    }
                }
            }
            match best {
                Some((_, u, to)) => {
                    let from = assignment[u];
                    assignment[u] = to;
                    part_weight[from] -= self.node_weight[u];
                    part_weight[to] += self.node_weight[u];
                    part_count[from] -= 1;
                    part_count[to] += 1;
                    moved_any = true;
                }
                None => break,
            }
        }
        moved_any
    }
}

/// Project a coarse assignment onto the finer level through the
/// contraction map.
fn project(coarse_assignment: &[usize], fine_to_coarse: &[usize]) -> Vec<usize> {
    fine_to_coarse
        .iter()
        .map(|&c| coarse_assignment[c])
        .collect()
}

/// The multilevel balance cap: `balance × ⌈n/k⌉` nodes, never below
/// `⌈n/k⌉` (a cap under perfect balance would be unsatisfiable).
fn balance_cap(n: usize, k: usize, balance: f64) -> usize {
    let per = n.div_ceil(k);
    ((per as f64 * balance).ceil() as usize).max(per)
}

/// The node of `part` with the least internal connectivity — the cheapest
/// one to give away during rebalancing.
fn cheapest_node(g: &CoarseGraph, assignment: &[usize], part: usize) -> usize {
    let internal = |x: usize| -> f32 {
        g.adj[x]
            .iter()
            .filter(|&&(v, _)| assignment[v] == part)
            .map(|&(_, w)| w)
            .sum()
    };
    (0..g.len())
        .filter(|&u| assignment[u] == part)
        .min_by(|&a, &b| internal(a).total_cmp(&internal(b)))
        .expect("part is non-empty")
}

/// Repair cap violations left by coarse-granularity moves and stranded
/// fallbacks: shed the cheapest boundary node of each overweight part into
/// the lightest part that can take it. Also guarantees no part is empty.
fn rebalance(g: &CoarseGraph, assignment: &mut [usize], k: usize, cap: usize) {
    let n = g.len();
    let mut weight = vec![0usize; k];
    let mut count = vec![0usize; k];
    for u in 0..n {
        weight[assignment[u]] += g.node_weight[u];
        count[assignment[u]] += 1;
    }
    // Empty parts steal the heaviest part's least-connected node.
    for p in 0..k {
        while count[p] == 0 {
            let donor = (0..k).max_by_key(|&q| count[q]).unwrap();
            if count[donor] <= 1 {
                break;
            }
            let u = cheapest_node(g, assignment, donor);
            assignment[u] = p;
            weight[donor] -= g.node_weight[u];
            weight[p] += g.node_weight[u];
            count[donor] -= 1;
            count[p] += 1;
        }
    }
    while let Some(over) = (0..k).find(|&p| weight[p] > cap && count[p] > 1) {
        let u = cheapest_node(g, assignment, over);
        let Some(to) = (0..k)
            .filter(|&p| p != over && weight[p] + g.node_weight[u] <= cap)
            .min_by_key(|&p| weight[p])
        else {
            break; // nothing can take it without violating the cap itself
        };
        assignment[u] = to;
        weight[over] -= g.node_weight[u];
        weight[to] += g.node_weight[u];
        count[over] -= 1;
        count[to] += 1;
    }
}

/// Undirected neighbor lists over non-zero weights (either direction).
fn undirected_neighbors(adj: &Adjacency) -> Vec<Vec<usize>> {
    let n = adj.num_nodes();
    let mut out = vec![Vec::new(); n];
    for (i, neighbors) in out.iter_mut().enumerate() {
        for j in 0..n {
            if i != j && (adj.weight(i, j) > 0.0 || adj.weight(j, i) > 0.0) {
                neighbors.push(j);
            }
        }
    }
    out
}

/// Greedy farthest-first seed spreading over hop distance.
fn farthest_first_seeds(neighbors: &[Vec<usize>], k: usize) -> Vec<usize> {
    let n = neighbors.len();
    let mut seeds = vec![0usize];
    let mut dist = bfs_distances(neighbors, 0);
    while seeds.len() < k {
        // Unreachable nodes (usize::MAX) are the farthest of all — picking
        // them first gives every component a seed.
        let next = (0..n)
            .filter(|i| !seeds.contains(i))
            .max_by_key(|&i| dist[i])
            .expect("k <= n leaves a candidate");
        seeds.push(next);
        let d2 = bfs_distances(neighbors, next);
        for i in 0..n {
            dist[i] = dist[i].min(d2[i]);
        }
    }
    seeds
}

fn bfs_distances(neighbors: &[Vec<usize>], src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; neighbors.len()];
    dist[src] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &v in &neighbors[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Nodes within `depth` hops of `owned` that are not themselves owned,
/// ascending. Depth 0 returns an empty halo.
pub fn halo_nodes(adj: &Adjacency, owned: &[usize], depth: usize) -> Vec<usize> {
    let n = adj.num_nodes();
    let neighbors = undirected_neighbors(adj);
    let mut level = vec![usize::MAX; n];
    let mut q: VecDeque<usize> = VecDeque::new();
    for &o in owned {
        level[o] = 0;
        q.push_back(o);
    }
    let mut halo = Vec::new();
    while let Some(u) = q.pop_front() {
        if level[u] >= depth {
            continue;
        }
        for &v in &neighbors[u] {
            if level[v] == usize::MAX {
                level[v] = level[u] + 1;
                halo.push(v);
                q.push_back(v);
            }
        }
    }
    halo.sort_unstable();
    halo
}

/// Assemble one part's halo-augmented subgraph from its owned-node list
/// (shared by [`Partitioning::subgraph`] and the one-pass
/// [`Partitioning::subgraphs`]).
fn subgraph_from_owned(
    adj: &Adjacency,
    p: usize,
    owned: Vec<usize>,
    halo_depth: usize,
) -> Subgraph {
    let halo = halo_nodes(adj, &owned, halo_depth);
    let owned_count = owned.len();
    let mut nodes = owned;
    nodes.extend_from_slice(&halo);
    let local_adj = induced_subgraph(adj, &nodes);
    Subgraph {
        part: p,
        owned_count,
        global_ids: nodes,
        adjacency: local_adj,
    }
}

/// The induced weighted adjacency over `nodes` (local indexing follows the
/// order of `nodes`).
pub fn induced_subgraph(adj: &Adjacency, nodes: &[usize]) -> Adjacency {
    let m = nodes.len();
    let mut weights = vec![0.0f32; m * m];
    for (li, &gi) in nodes.iter().enumerate() {
        for (lj, &gj) in nodes.iter().enumerate() {
            weights[li * m + lj] = adj.weight(gi, gj);
        }
    }
    Adjacency::from_dense(m, weights)
}

/// Recursive coordinate bisection helper: assign `ids` to `k` parts
/// starting at part id `base`, splitting along the widest axis.
fn rcb(coords: &[(f32, f32)], ids: &mut [usize], k: usize, base: usize, assignment: &mut [usize]) {
    if k == 1 {
        for &i in ids.iter() {
            assignment[i] = base;
        }
        return;
    }
    // Widest axis of this subset.
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::INFINITY,
        f32::NEG_INFINITY,
    );
    for &i in ids.iter() {
        let (x, y) = coords[i];
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let by_x = (max_x - min_x) >= (max_y - min_y);
    ids.sort_unstable_by(|&a, &b| {
        let ka = if by_x { coords[a].0 } else { coords[a].1 };
        let kb = if by_x { coords[b].0 } else { coords[b].1 };
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let k_left = k / 2;
    let k_right = k - k_left;
    // Split proportionally so odd part counts stay balanced.
    let cut = ids.len() * k_left / k;
    let (left, right) = ids.split_at_mut(cut);
    rcb(coords, left, k_left, base, assignment);
    rcb(coords, right, k_right, base + k_left, assignment);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{highway_corridor, random_geometric};

    fn net() -> crate::generators::SensorNetwork {
        random_geometric(40, 10.0, 7)
    }

    #[test]
    fn contiguous_covers_and_balances() {
        let p = Partitioning::contiguous(10, 3);
        assert_eq!(p.part_sizes(), vec![4, 4, 2]);
        let all: Vec<usize> = (0..3).flat_map(|k| p.part_nodes(k)).collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nodes_by_part_matches_per_part_scans() {
        let n = net();
        let p = Partitioning::multilevel(&n.adjacency, 4);
        let by_part = p.nodes_by_part();
        assert_eq!(by_part.len(), 4);
        for (k, owned) in by_part.iter().enumerate() {
            assert_eq!(owned, &p.part_nodes(k), "one-pass grouping, part {k}");
        }
    }

    #[test]
    fn cut_neighbors_sparse_matches_dense_scan() {
        let n = net();
        let g = SparseGraph::from_adjacency(&n.adjacency);
        for k in [2, 3, 5] {
            let p = Partitioning::multilevel(&n.adjacency, k);
            assert_eq!(
                p.cut_neighbors_sparse(&g),
                p.cut_neighbors(&n.adjacency),
                "k = {k}"
            );
        }
    }

    #[test]
    fn rcb_is_balanced_and_spatially_compact() {
        let n = net();
        let p = Partitioning::coordinate_bisection(&n.coords, 4);
        assert!(p.imbalance() <= 1.11, "imbalance {}", p.imbalance());
        // Spatial compactness: RCB must cut fewer weighted edges than an
        // arbitrary contiguous-index split of the same node set.
        let naive = Partitioning::contiguous(n.num_nodes(), 4);
        assert!(
            p.edge_cut_weight(&n.adjacency) <= naive.edge_cut_weight(&n.adjacency),
            "rcb {} vs naive {}",
            p.edge_cut_weight(&n.adjacency),
            naive.edge_cut_weight(&n.adjacency)
        );
    }

    #[test]
    fn rcb_handles_non_power_of_two() {
        let n = net();
        let p = Partitioning::coordinate_bisection(&n.coords, 3);
        assert_eq!(p.num_parts(), 3);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
        assert!(p.imbalance() <= 1.2, "imbalance {}", p.imbalance());
    }

    #[test]
    fn greedy_bfs_covers_all_nodes() {
        let n = net();
        let p = Partitioning::greedy_bfs(&n.adjacency, 4);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 40);
        assert!(
            p.part_sizes().iter().all(|&s| s > 0),
            "{:?}",
            p.part_sizes()
        );
        assert!(p.imbalance() <= 1.6, "imbalance {}", p.imbalance());
    }

    #[test]
    fn corridor_bfs_cut_is_small() {
        // A 1-D corridor partitioned into k consecutive regions should cut
        // only the few edges spanning region boundaries.
        let n = highway_corridor(30, 1, 3);
        let p = Partitioning::greedy_bfs(&n.adjacency, 3);
        assert!(
            p.cut_fraction(&n.adjacency) < 0.35,
            "cut fraction {}",
            p.cut_fraction(&n.adjacency)
        );
    }

    #[test]
    fn halo_depth_zero_is_empty_and_grows_with_depth() {
        let n = net();
        let p = Partitioning::coordinate_bisection(&n.coords, 4);
        let owned = p.part_nodes(0);
        assert!(halo_nodes(&n.adjacency, &owned, 0).is_empty());
        let h1 = halo_nodes(&n.adjacency, &owned, 1);
        let h2 = halo_nodes(&n.adjacency, &owned, 2);
        assert!(h1.len() <= h2.len());
        // Halo never contains owned nodes.
        assert!(h1.iter().all(|h| !owned.contains(h)));
    }

    #[test]
    fn subgraph_orders_owned_first_and_keeps_weights() {
        let n = net();
        let p = Partitioning::coordinate_bisection(&n.coords, 2);
        let sub = p.subgraph(&n.adjacency, 1, 1);
        assert_eq!(&sub.global_ids[..sub.owned_count], &p.part_nodes(1)[..]);
        // Induced weights match the global adjacency.
        for (li, &gi) in sub.global_ids.iter().enumerate() {
            for (lj, &gj) in sub.global_ids.iter().enumerate() {
                assert_eq!(sub.adjacency.weight(li, lj), n.adjacency.weight(gi, gj));
            }
        }
    }

    #[test]
    fn replication_factor_at_least_one() {
        let n = net();
        let p = Partitioning::coordinate_bisection(&n.coords, 4);
        let r0 = p.replication_factor(&n.adjacency, 0);
        let r2 = p.replication_factor(&n.adjacency, 2);
        assert!((r0 - 1.0).abs() < 1e-9, "no halo ⇒ no replication");
        assert!(r2 > 1.0, "halo implies replication: {r2}");
    }

    /// Two 4-cliques with no edges between them.
    fn disconnected_adjacency() -> Adjacency {
        let n = 8;
        let mut w = vec![0.0f32; n * n];
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    w[a * n + b] = 1.0;
                    w[(a + 4) * n + (b + 4)] = 1.0;
                }
            }
        }
        Adjacency::from_dense(n, w)
    }

    #[test]
    fn greedy_bfs_covers_disconnected_graphs() {
        // Regression: farthest-first seeding must give every component a
        // seed, and stranded-node fallback must cover the rest — no node
        // left unassigned, no panic.
        let adj = disconnected_adjacency();
        for k in [2usize, 3, 5] {
            let p = Partitioning::greedy_bfs(&adj, k);
            assert_eq!(p.part_sizes().iter().sum::<usize>(), 8, "k={k}");
            assert!(p.part_sizes().iter().all(|&s| s > 0), "k={k}");
        }
        // k = 2 splits exactly along the component boundary.
        let p = Partitioning::greedy_bfs(&adj, 2);
        assert_eq!(p.edge_cut_weight(&adj), 0.0, "components need no cut");
    }

    #[test]
    fn greedy_bfs_k_beyond_n_leaves_empty_parts() {
        // Regression: k > n must not panic — the first n parts get one
        // node each and the rest stay empty (documented behavior that
        // PartitionedPlane consumers tolerate).
        let adj = disconnected_adjacency();
        let p = Partitioning::greedy_bfs(&adj, 11);
        assert_eq!(p.num_parts(), 11);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert_eq!(sizes.iter().filter(|&&s| s == 0).count(), 3);
        // Empty parts produce empty (but valid) subgraphs.
        let sub = p.subgraph(&adj, 10, 1);
        assert_eq!(sub.num_nodes(), 0);
        assert_eq!(sub.halo_count(), 0);
    }

    #[test]
    fn multilevel_handles_disconnected_and_k_beyond_n() {
        let adj = disconnected_adjacency();
        let p = Partitioning::multilevel(&adj, 2);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 8);
        assert_eq!(p.edge_cut_weight(&adj), 0.0, "components need no cut");
        let p = Partitioning::multilevel(&adj, 9);
        assert_eq!(p.num_parts(), 9);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 8);
    }

    #[test]
    fn multilevel_is_balanced_and_beats_greedy_on_corridors() {
        let net = highway_corridor(64, 2, 3);
        let cost = HaloCostModel::new(12, 2);
        for k in [2usize, 4, 8] {
            let ml = Partitioning::multilevel(&net.adjacency, k);
            assert_eq!(ml.part_sizes().iter().sum::<usize>(), 64, "k={k}");
            assert!(ml.part_sizes().iter().all(|&s| s > 0), "k={k}");
            assert!(ml.imbalance() <= 1.3, "k={k} imbalance {}", ml.imbalance());
            let greedy = Partitioning::greedy_bfs(&net.adjacency, k);
            assert!(
                cost.halo_bytes(&net.adjacency, &ml) <= cost.halo_bytes(&net.adjacency, &greedy),
                "k={k}: multilevel must not lose to greedy"
            );
        }
    }

    #[test]
    fn cut_neighbors_counts_replicas_not_weight() {
        // A path 0-1-2-3 split [0,1] | [2,3]: one cut edge, each side
        // replicates one neighbor → 2 cut neighbors.
        let mut w = vec![0.0f32; 16];
        for i in 0..3 {
            w[i * 4 + i + 1] = 5.0; // heavy weights must not matter
            w[(i + 1) * 4 + i] = 5.0;
        }
        let adj = Adjacency::from_dense(4, w);
        let p = Partitioning::from_assignment(vec![0, 0, 1, 1], 2);
        assert_eq!(p.cut_neighbors(&adj), 2);
        let cost = HaloCostModel::new(3, 2);
        // 2 replicas × (2·3 − 1) reads × 8 bytes.
        assert_eq!(cost.halo_bytes(&adj, &p), 2 * 5 * 8);
        // One part: nothing is replicated.
        let whole = Partitioning::from_assignment(vec![0; 4], 1);
        assert_eq!(whole.cut_neighbors(&adj), 0);
    }

    #[test]
    fn refinement_never_worsens_the_halo_score() {
        let cost = HaloCostModel::new(12, 1);
        for seed in [1u64, 5, 9] {
            let net = random_geometric(48, 10.0, seed);
            let unrefined = Partitioning::multilevel_with(
                &net.adjacency,
                4,
                &MultilevelConfig {
                    refine_passes: 0,
                    ..Default::default()
                },
            );
            let refined = Partitioning::multilevel(&net.adjacency, 4);
            assert!(
                cost.halo_bytes(&net.adjacency, &refined)
                    <= cost.halo_bytes(&net.adjacency, &unrefined),
                "seed {seed}: refinement must be monotone in halo score"
            );
        }
    }

    #[test]
    fn explicit_assignment_validates() {
        let p = Partitioning::from_assignment(vec![0, 1, 1, 0], 2);
        assert_eq!(p.part_nodes(0), vec![0, 3]);
        assert_eq!(p.part_nodes(1), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "part >= k")]
    fn out_of_range_assignment_panics() {
        Partitioning::from_assignment(vec![0, 2], 2);
    }
}
