//! Incremental dirty-boundary re-partitioning for dynamic graphs.
//!
//! The dynamic plane's `partition_timeline` historically re-ran the full
//! multilevel partitioner on **every** graph mutation — fine at 325
//! sensors, a wall at the 10⁵–10⁶-node city scale. Following DGC's
//! partitioning-by-chunks observation (dynamic partitions should be
//! *repaired* locally around the mutated region, not rebuilt), this module
//! maintains a partitioning **incrementally**:
//!
//! - [`SparseGraph`] — an undirected weighted adjacency-list graph that
//!   scales to millions of nodes (the dense [`Adjacency`] is O(n²));
//! - [`GraphDelta`] — one mutation batch: edge weight changes (including
//!   removals) plus node arrivals;
//! - [`IncrementalPartitioner`] — holds the current assignment plus
//!   incrementally-maintained cut state (per-node part-contact counts,
//!   per-part sizes, the global cut-neighbor count), restricts KL/FM
//!   refinement to the **dirty boundary region** (mutated endpoints plus
//!   their `halo_depth`-hop halo), prices every candidate move directly in
//!   [`HaloCostModel`] units, and falls back to a full from-scratch solve
//!   only when modeled halo bytes drift past [`IncrementalConfig::drift`]
//!   versus the last full solve;
//! - [`RepartitionPolicy`] — the consumer-facing knob
//!   (`DynamicTrainConfig::repartition` threads it into
//!   `partition_timeline`).
//!
//! Cut state is exact at all times: `cut_neighbors()` returns in O(1) the
//! same count `Partitioning::cut_neighbors` recomputes in O(E) — a
//! property-tested invariant.

use super::{balance_cap, HaloCostModel, Partitioning};
use crate::adjacency::Adjacency;
use std::collections::VecDeque;

/// An undirected weighted graph stored as adjacency lists — the sparse
/// substrate the incremental partitioner (and the city-scale benches)
/// operate on, where the dense [`Adjacency`] would cost O(n²) memory.
///
/// Each undirected edge `{u, v}` appears in both endpoints' lists with the
/// same weight; self-loops are rejected. Weights are non-negative, and a
/// weight of exactly `0.0` means "no edge".
#[derive(Debug, Clone, Default)]
pub struct SparseGraph {
    adj: Vec<Vec<(usize, f32)>>,
    edges: usize,
}

impl SparseGraph {
    /// An edgeless graph over `n` nodes.
    pub fn new(n: usize) -> Self {
        SparseGraph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Sparsify a dense adjacency: the undirected weight of `{i, j}` is
    /// `w(i,j) + w(j,i)` (both directions collapse, exactly as the
    /// multilevel coarsener's `CoarseGraph` does); self-loops are dropped.
    pub fn from_adjacency(a: &Adjacency) -> Self {
        let n = a.num_nodes();
        let mut g = SparseGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let w = a.weight(i, j) + a.weight(j, i);
                if w > 0.0 {
                    g.set_edge(i, j, w);
                }
            }
        }
        g
    }

    /// Build from an undirected edge list; duplicate `{u, v}` entries sum.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f32)]) -> Self {
        let mut g = SparseGraph::new(n);
        for &(u, v, w) in edges {
            let prev = g.edge_weight(u, v);
            g.set_edge(u, v, prev + w);
        }
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges with non-zero weight.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// The `(neighbor, weight)` list of node `u`.
    pub fn neighbors(&self, u: usize) -> &[(usize, f32)] {
        &self.adj[u]
    }

    /// Degree (number of incident undirected edges) of node `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// The weight of undirected edge `{u, v}` (0.0 when absent).
    pub fn edge_weight(&self, u: usize, v: usize) -> f32 {
        self.adj[u]
            .iter()
            .find(|&&(x, _)| x == v)
            .map_or(0.0, |&(_, w)| w)
    }

    /// Set the weight of undirected edge `{u, v}` (`0.0` removes it) and
    /// return the previous weight. Weights must be finite and `>= 0`.
    pub fn set_edge(&mut self, u: usize, v: usize, w: f32) -> f32 {
        assert!(u != v, "self-loops are not supported");
        assert!(
            w.is_finite() && w >= 0.0,
            "edge weight must be finite and non-negative"
        );
        let prev = self.half_set(u, v, w);
        let back = self.half_set(v, u, w);
        debug_assert_eq!(prev.to_bits(), back.to_bits(), "lists out of sync");
        if prev == 0.0 && w > 0.0 {
            self.edges += 1;
        } else if prev > 0.0 && w == 0.0 {
            self.edges -= 1;
        }
        prev
    }

    /// Append `count` isolated nodes (ids `num_nodes()..`).
    pub fn add_nodes(&mut self, count: usize) {
        self.adj.resize_with(self.adj.len() + count, Vec::new);
    }

    /// Densify into an [`Adjacency`] carrying the undirected weight in
    /// both directions — O(n²); intended for tests and small graphs only.
    pub fn to_adjacency(&self) -> Adjacency {
        let n = self.num_nodes();
        let mut w = vec![0.0f32; n * n];
        for (u, list) in self.adj.iter().enumerate() {
            for &(v, weight) in list {
                w[u * n + v] = weight;
            }
        }
        Adjacency::from_dense(n, w)
    }

    /// Update one endpoint's list; returns the previous weight.
    fn half_set(&mut self, u: usize, v: usize, w: f32) -> f32 {
        let list = &mut self.adj[u];
        match list.iter().position(|&(x, _)| x == v) {
            Some(i) => {
                let prev = list[i].1;
                if w > 0.0 {
                    list[i].1 = w;
                } else {
                    list.swap_remove(i);
                }
                prev
            }
            None => {
                if w > 0.0 {
                    list.push((v, w));
                }
                0.0
            }
        }
    }
}

/// One batch of graph mutations: node arrivals plus undirected edge
/// weight updates. New nodes take ids `num_nodes()..num_nodes() +
/// added_nodes` and may be referenced by this delta's own edges; a weight
/// of `0.0` removes the edge. Node departures are modeled as isolating a
/// node (removing all its incident edges).
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    /// Nodes appended to the graph by this delta.
    pub added_nodes: usize,
    /// Undirected edge updates `(u, v, new_weight)`; `0.0` removes.
    pub edges: Vec<(usize, usize, f32)>,
}

impl GraphDelta {
    /// True when the delta mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.added_nodes == 0 && self.edges.is_empty()
    }

    /// The edge delta between two same-sized dense adjacencies, in the
    /// undirected `w(i,j) + w(j,i)` convention of
    /// [`SparseGraph::from_adjacency`] — how `partition_timeline` turns a
    /// pair of consecutive snapshots into a repairable mutation.
    pub fn between(prev: &Adjacency, cur: &Adjacency) -> GraphDelta {
        let n = prev.num_nodes();
        assert_eq!(n, cur.num_nodes(), "adjacencies must match in size");
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let wp = prev.weight(i, j) + prev.weight(j, i);
                let wc = cur.weight(i, j) + cur.weight(j, i);
                if wp != wc {
                    edges.push((i, j, wc));
                }
            }
        }
        GraphDelta {
            added_nodes: 0,
            edges,
        }
    }
}

/// How a dynamic-graph consumer maintains its partition across mutations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepartitionPolicy {
    /// Re-run the configured full partitioner on every mutation — the
    /// legacy (bit-identical) path.
    Full,
    /// Repair the previous partition around the dirty boundary region,
    /// falling back to a full rebuild only on quality drift.
    Incremental {
        /// Fallback threshold: rebuild from scratch once modeled halo
        /// bytes exceed `(1 + drift) ×` the last full solve's.
        drift: f64,
        /// Hops of halo around mutated endpoints included in the
        /// refinement's active set.
        halo_depth: usize,
    },
}

impl RepartitionPolicy {
    /// The default incremental policy (10% drift, 2-hop dirty halo).
    pub fn incremental() -> Self {
        RepartitionPolicy::Incremental {
            drift: 0.10,
            halo_depth: 2,
        }
    }
}

impl Default for RepartitionPolicy {
    /// The legacy full-rebuild path, so existing consumers are unchanged.
    fn default() -> Self {
        RepartitionPolicy::Full
    }
}

/// Knobs of the [`IncrementalPartitioner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalConfig {
    /// Rebuild from scratch once modeled halo bytes exceed
    /// `(1 + drift) ×` the last full solve's halo bytes.
    pub drift: f64,
    /// Hops of halo around mutated endpoints swept into the dirty
    /// refinement region.
    pub halo_depth: usize,
    /// Balance tolerance: no part may exceed `balance × ⌈n/k⌉` nodes —
    /// the same cap [`super::MultilevelConfig::balance`] enforces.
    pub balance: f64,
    /// Refinement passes over the dirty region per delta (and over the
    /// boundary per full solve).
    pub refine_passes: usize,
    /// The halo cost model every candidate move is priced by.
    pub cost: HaloCostModel,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            drift: 0.10,
            halo_depth: 2,
            balance: 1.15,
            refine_passes: 4,
            cost: HaloCostModel::default(),
        }
    }
}

impl IncrementalConfig {
    /// Defaults with the cost model tuned to a forecast `horizon` over
    /// `features` f32 features per node.
    pub fn for_horizon(horizon: usize, features: usize) -> Self {
        IncrementalConfig {
            cost: HaloCostModel::new(horizon.max(1), features.max(1)),
            ..Default::default()
        }
    }

    /// Defaults overlaid with a [`RepartitionPolicy::Incremental`]'s
    /// knobs (panics on [`RepartitionPolicy::Full`] — there is nothing
    /// incremental to configure).
    pub fn from_policy(policy: RepartitionPolicy, cost: HaloCostModel) -> Self {
        match policy {
            RepartitionPolicy::Incremental { drift, halo_depth } => IncrementalConfig {
                drift,
                halo_depth,
                cost,
                ..Default::default()
            },
            RepartitionPolicy::Full => {
                panic!("RepartitionPolicy::Full has no incremental configuration")
            }
        }
    }
}

/// What one [`IncrementalPartitioner::apply_delta`] call did.
#[derive(Debug, Clone, Copy)]
pub struct RepairStats {
    /// Nodes in the dirty refinement region (mutated endpoints + halo).
    pub dirty_nodes: usize,
    /// Boundary moves the restricted refinement applied.
    pub moves: usize,
    /// Whether quality drift forced a full from-scratch rebuild.
    pub rebuilt: bool,
    /// Modeled halo bytes after the repair (or rebuild).
    pub halo_bytes: u64,
}

/// A partitioning maintained incrementally across graph mutations.
///
/// Holds the current graph and assignment plus exact cut state — per-node
/// *part contact* counts (how many of a node's neighbors live in each
/// part), per-part sizes, and the global cut-neighbor count — all updated
/// in O(degree) per mutation, so [`IncrementalPartitioner::halo_bytes`]
/// is O(1) where `Partitioning::cut_neighbors` rescans every edge.
///
/// ```
/// use st_graph::partition::incremental::{
///     GraphDelta, IncrementalConfig, IncrementalPartitioner, SparseGraph,
/// };
///
/// // A 6-node path split in half, repaired after an edge arrives. The
/// // new edge closes a cycle, so the cut genuinely doubles — a generous
/// // drift keeps the repair local instead of falling back to a rebuild.
/// let g = SparseGraph::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
/// let cfg = IncrementalConfig { drift: 2.0, ..IncrementalConfig::default() };
/// let mut inc = IncrementalPartitioner::partition_fresh(g, 2, cfg);
/// let before = inc.halo_bytes();
/// let stats = inc.apply_delta(&GraphDelta { added_nodes: 0, edges: vec![(0, 5, 2.0)] });
/// assert!(!stats.rebuilt && stats.halo_bytes >= before);
/// assert_eq!(inc.cut_neighbors(), inc.partitioning().cut_neighbors(&inc.graph().to_adjacency()));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalPartitioner {
    graph: SparseGraph,
    cfg: IncrementalConfig,
    k: usize,
    assignment: Vec<usize>,
    part_sizes: Vec<usize>,
    /// Per node: `(part, count)` of its neighbors by part (zero counts are
    /// dropped), the structure every cut/gain query reads.
    contacts: Vec<Vec<(usize, u32)>>,
    /// Global cut-neighbor count: `Σ_v |{foreign parts v touches}|`.
    cut: usize,
    /// Halo bytes of the last full solve — the drift-fallback baseline.
    baseline_halo: u64,
}

impl IncrementalPartitioner {
    /// Adopt an existing partitioning (e.g. a dense multilevel solve of
    /// the same graph) as the maintained state; the drift baseline is the
    /// seeded partitioning's own halo bytes.
    pub fn seed(graph: SparseGraph, partitioning: &Partitioning, cfg: IncrementalConfig) -> Self {
        assert_eq!(
            graph.num_nodes(),
            partitioning.num_nodes(),
            "partitioning must cover the graph"
        );
        let mut s = Self::from_assignment(
            graph,
            partitioning.assignment().to_vec(),
            partitioning.num_parts(),
            cfg,
        );
        s.baseline_halo = s.halo_bytes();
        s
    }

    /// Full from-scratch solve on the sparse graph: farthest-first seeded
    /// region growing under the balance cap, then halo-priced boundary
    /// refinement — the rebuild path the drift fallback takes, and the
    /// "from-scratch" baseline the `ablation_dynamic` bench compares
    /// repair quality against. Deterministic (no RNG).
    pub fn partition_fresh(graph: SparseGraph, k: usize, cfg: IncrementalConfig) -> Self {
        let n = graph.num_nodes();
        assert!(k > 0, "need at least one part");
        if k >= n || k == 1 {
            // One node per part (parts n..k empty) or everything in part 0
            // — nothing to refine either way.
            let assignment = if k == 1 { vec![0; n] } else { (0..n).collect() };
            let mut s = Self::from_assignment(graph, assignment, k, cfg);
            s.baseline_halo = s.halo_bytes();
            return s;
        }
        let cap = balance_cap(n, k, cfg.balance);
        let assignment = grow_regions_sparse(&graph, k, cap);
        let mut s = Self::from_assignment(graph, assignment, k, cfg);
        let all: Vec<usize> = (0..n).collect();
        s.refine(&all, cap);
        s.baseline_halo = s.halo_bytes();
        s
    }

    /// Apply one mutation batch: update the graph and cut state, place
    /// arriving nodes, refine the dirty boundary region, and fall back to
    /// a full rebuild if modeled halo bytes drifted past the threshold.
    ///
    /// An empty delta is a guaranteed no-op: the assignment is returned
    /// bit-identical (property-tested).
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> RepairStats {
        let prev_nodes = self.graph.num_nodes();
        // Arrivals start in the lightest part so this delta's own edges
        // have well-defined endpoints; dirty refinement re-homes them.
        if delta.added_nodes > 0 {
            self.graph.add_nodes(delta.added_nodes);
            for _ in 0..delta.added_nodes {
                self.contacts.push(Vec::new());
                let p = (0..self.k).min_by_key(|&p| self.part_sizes[p]).unwrap();
                self.assignment.push(p);
                self.part_sizes[p] += 1;
            }
        }
        let mut dirty: Vec<usize> = (prev_nodes..self.graph.num_nodes()).collect();
        for &(u, v, w) in &delta.edges {
            self.apply_edge(u, v, w);
            dirty.push(u);
            dirty.push(v);
        }
        dirty.sort_unstable();
        dirty.dedup();
        let active = self.expand_halo(&dirty);
        let cap = balance_cap(self.graph.num_nodes(), self.k, self.cfg.balance);
        let moves = self.refine(&active, cap);
        let mut rebuilt = false;
        if self.halo_bytes() as f64 > (1.0 + self.cfg.drift) * self.baseline_halo as f64 {
            let graph = std::mem::take(&mut self.graph);
            *self = Self::partition_fresh(graph, self.k, self.cfg);
            rebuilt = true;
        }
        RepairStats {
            dirty_nodes: active.len(),
            moves,
            rebuilt,
            halo_bytes: self.halo_bytes(),
        }
    }

    /// The maintained graph.
    pub fn graph(&self) -> &SparseGraph {
        &self.graph
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// The current assignment slice.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Sizes of every part (maintained, O(k) to clone).
    pub fn part_sizes(&self) -> Vec<usize> {
        self.part_sizes.clone()
    }

    /// Load imbalance: `max part size / (n / k)` (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = *self.part_sizes.iter().max().unwrap_or(&0) as f64;
        max / (self.assignment.len() as f64 / self.k as f64)
    }

    /// The current cut-neighbor count — O(1), maintained incrementally;
    /// equals `Partitioning::cut_neighbors` recomputed from scratch.
    pub fn cut_neighbors(&self) -> usize {
        self.cut
    }

    /// Modeled halo bytes of the current partitioning — O(1).
    pub fn halo_bytes(&self) -> u64 {
        self.cut as u64 * self.cfg.cost.reads_per_cut_neighbor() * self.cfg.cost.row_bytes
    }

    /// Halo bytes of the last full solve (the drift-fallback baseline).
    pub fn baseline_halo_bytes(&self) -> u64 {
        self.baseline_halo
    }

    /// The configuration in force.
    pub fn config(&self) -> &IncrementalConfig {
        &self.cfg
    }

    /// Snapshot the current assignment as a [`Partitioning`].
    pub fn partitioning(&self) -> Partitioning {
        Partitioning::from_assignment(self.assignment.clone(), self.k)
    }

    // --- internals -----------------------------------------------------

    /// Build exact cut state for an assignment in one O(E) sweep.
    fn from_assignment(
        graph: SparseGraph,
        assignment: Vec<usize>,
        k: usize,
        cfg: IncrementalConfig,
    ) -> Self {
        assert!(
            assignment.iter().all(|&p| p < k),
            "assignment references a part >= k"
        );
        let n = graph.num_nodes();
        let mut part_sizes = vec![0usize; k];
        for &p in &assignment {
            part_sizes[p] += 1;
        }
        let mut contacts: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        for (u, c) in contacts.iter_mut().enumerate() {
            for &(v, _) in graph.neighbors(u) {
                bump(c, assignment[v], 1);
            }
        }
        let cut = contacts
            .iter()
            .zip(assignment.iter())
            .map(|(c, &own)| c.iter().filter(|&&(p, _)| p != own).count())
            .sum();
        IncrementalPartitioner {
            graph,
            cfg,
            k,
            assignment,
            part_sizes,
            contacts,
            cut,
            baseline_halo: 0,
        }
    }

    /// Distinct parts other than `own` that `u` touches.
    fn foreign_contacts(&self, u: usize, own: usize) -> usize {
        self.contacts[u].iter().filter(|&&(p, _)| p != own).count()
    }

    /// Neighbors of `u` currently in part `p`.
    fn contact_count(&self, u: usize, p: usize) -> u32 {
        self.contacts[u]
            .iter()
            .find(|&&(q, _)| q == p)
            .map_or(0, |&(_, c)| c)
    }

    /// Update one edge's weight, keeping contacts and the cut count exact.
    fn apply_edge(&mut self, u: usize, v: usize, w: f32) {
        let prev = self.graph.set_edge(u, v, w);
        let existed = prev > 0.0;
        let exists = w > 0.0;
        if existed == exists {
            return; // weight-only change: contact counts are unweighted
        }
        let pu = self.assignment[u];
        let pv = self.assignment[v];
        if exists {
            if bump(&mut self.contacts[u], pv, 1) == 1 && pv != pu {
                self.cut += 1;
            }
            if bump(&mut self.contacts[v], pu, 1) == 1 && pu != pv {
                self.cut += 1;
            }
        } else {
            if bump(&mut self.contacts[u], pv, -1) == 0 && pv != pu {
                self.cut -= 1;
            }
            if bump(&mut self.contacts[v], pu, -1) == 0 && pu != pv {
                self.cut -= 1;
            }
        }
    }

    /// The cut-neighbor reduction of moving `u` to part `to` (positive =
    /// fewer halo replicas), priced without mutating any state.
    fn halo_gain(&self, u: usize, to: usize) -> i64 {
        let from = self.assignment[u];
        debug_assert_ne!(from, to);
        // u's own replicas change with its notion of "foreign"...
        let mut delta = self.foreign_contacts(u, to) as i64 - self.foreign_contacts(u, from) as i64;
        // ...and each neighbor gains/loses a contact in `to`/`from`.
        for &(v, _) in self.graph.neighbors(u) {
            let pv = self.assignment[v];
            if self.contact_count(v, from) == 1 && from != pv {
                delta -= 1;
            }
            if self.contact_count(v, to) == 0 && to != pv {
                delta += 1;
            }
        }
        -delta
    }

    /// Move `u` to part `to`, updating contacts, sizes, and the cut count.
    fn move_node(&mut self, u: usize, to: usize) {
        let from = self.assignment[u];
        debug_assert_ne!(from, to);
        self.cut -= self.foreign_contacts(u, from);
        self.cut += self.foreign_contacts(u, to);
        self.assignment[u] = to;
        self.part_sizes[from] -= 1;
        self.part_sizes[to] += 1;
        let IncrementalPartitioner {
            graph,
            contacts,
            assignment,
            cut,
            ..
        } = self;
        for &(v, _) in graph.neighbors(u) {
            let pv = assignment[v];
            if bump(&mut contacts[v], from, -1) == 0 && from != pv {
                *cut -= 1;
            }
            if bump(&mut contacts[v], to, 1) == 1 && to != pv {
                *cut += 1;
            }
        }
    }

    /// Mutated endpoints plus their `halo_depth`-hop halo, ascending.
    fn expand_halo(&self, dirty: &[usize]) -> Vec<usize> {
        if dirty.is_empty() || self.cfg.halo_depth == 0 {
            return dirty.to_vec();
        }
        let n = self.graph.num_nodes();
        let mut level = vec![u8::MAX; n];
        let mut q: VecDeque<usize> = VecDeque::new();
        for &d in dirty {
            level[d] = 0;
            q.push_back(d);
        }
        let depth = self.cfg.halo_depth.min(u8::MAX as usize - 1) as u8;
        let mut out = dirty.to_vec();
        while let Some(u) = q.pop_front() {
            if level[u] >= depth {
                continue;
            }
            for &(v, _) in self.graph.neighbors(u) {
                if level[v] == u8::MAX {
                    level[v] = level[u] + 1;
                    out.push(v);
                    q.push_back(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Greedy KL/FM passes restricted to `active`: each node may move to a
    /// contacted part of strictly positive halo gain, subject to the
    /// balance cap and the no-empty-part rule. The integer cut-neighbor
    /// count strictly decreases with every move, so passes terminate.
    fn refine(&mut self, active: &[usize], cap: usize) -> usize {
        let mut total = 0usize;
        for _ in 0..self.cfg.refine_passes.max(1) {
            let mut moved = 0usize;
            for &u in active {
                let from = self.assignment[u];
                if self.part_sizes[from] <= 1 || self.foreign_contacts(u, from) == 0 {
                    continue;
                }
                let mut best: Option<(i64, usize)> = None;
                for i in 0..self.contacts[u].len() {
                    let p = self.contacts[u][i].0;
                    if p == from || self.part_sizes[p] + 1 > cap {
                        continue;
                    }
                    let g = self.halo_gain(u, p);
                    let better = match best {
                        None => g > 0,
                        Some((bg, bp)) => g > bg || (g == bg && p < bp),
                    };
                    if g > 0 && better {
                        best = Some((g, p));
                    }
                }
                if let Some((_, to)) = best {
                    self.move_node(u, to);
                    moved += 1;
                }
            }
            total += moved;
            if moved == 0 {
                break;
            }
        }
        total
    }
}

/// Adjust the `(part, count)` entry for `p` by `delta` and return the
/// resulting count; zero-count entries are dropped.
fn bump(contacts: &mut Vec<(usize, u32)>, p: usize, delta: i32) -> u32 {
    match contacts.iter().position(|&(q, _)| q == p) {
        Some(i) => {
            let c = (contacts[i].1 as i64 + delta as i64).max(0) as u32;
            if c == 0 {
                contacts.swap_remove(i);
            } else {
                contacts[i].1 = c;
            }
            c
        }
        None => {
            if delta > 0 {
                contacts.push((p, delta as u32));
                delta as u32
            } else {
                0
            }
        }
    }
}

/// Farthest-first seeded region growing over the sparse graph under a
/// balance cap — the sparse analogue of `Partitioning::greedy_bfs`, with
/// stranded nodes falling back to the smallest part. Deterministic.
fn grow_regions_sparse(g: &SparseGraph, k: usize, cap: usize) -> Vec<usize> {
    let n = g.num_nodes();
    let seeds = farthest_first_sparse(g, k);
    let mut assignment = vec![usize::MAX; n];
    let mut sizes = vec![0usize; k];
    let mut frontiers: Vec<VecDeque<usize>> = seeds.iter().map(|&s| VecDeque::from([s])).collect();
    for (p, &s) in seeds.iter().enumerate() {
        assignment[s] = p;
        sizes[p] = 1;
    }
    let mut progress = true;
    while progress {
        progress = false;
        for p in 0..k {
            if sizes[p] >= cap {
                continue;
            }
            while let Some(u) = frontiers[p].pop_front() {
                let mut claimed = false;
                for &(v, _) in g.neighbors(u) {
                    if assignment[v] == usize::MAX {
                        assignment[v] = p;
                        sizes[p] += 1;
                        frontiers[p].push_back(v);
                        claimed = true;
                        progress = true;
                        if sizes[p] >= cap {
                            break;
                        }
                    }
                }
                if claimed {
                    frontiers[p].push_back(u);
                    break;
                }
            }
        }
    }
    for a in assignment.iter_mut() {
        if *a == usize::MAX {
            let p = (0..k).min_by_key(|&p| sizes[p]).unwrap();
            *a = p;
            sizes[p] += 1;
        }
    }
    assignment
}

/// Greedy farthest-first seed spreading over hop distance (sparse BFS);
/// unreachable nodes rank farthest so every component gets a seed first.
fn farthest_first_sparse(g: &SparseGraph, k: usize) -> Vec<usize> {
    let n = g.num_nodes();
    let mut seeds = vec![0usize];
    let mut dist = bfs_sparse(g, 0);
    while seeds.len() < k.min(n) {
        let next = (0..n)
            .filter(|i| !seeds.contains(i))
            .max_by_key(|&i| dist[i])
            .expect("k <= n leaves a candidate");
        seeds.push(next);
        let d2 = bfs_sparse(g, next);
        for i in 0..n {
            dist[i] = dist[i].min(d2[i]);
        }
    }
    seeds
}

fn bfs_sparse(g: &SparseGraph, src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    dist[src] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &(v, _) in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{city_grid, random_geometric};

    fn path(n: usize) -> SparseGraph {
        let edges: Vec<(usize, usize, f32)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        SparseGraph::from_edges(n, &edges)
    }

    #[test]
    fn sparse_graph_edge_bookkeeping() {
        let mut g = SparseGraph::new(4);
        assert_eq!(g.set_edge(0, 1, 2.0), 0.0);
        assert_eq!(g.set_edge(1, 0, 3.0), 2.0, "undirected: same edge");
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), 3.0);
        assert_eq!(g.set_edge(0, 1, 0.0), 3.0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        g.add_nodes(2);
        assert_eq!(g.num_nodes(), 6);
    }

    #[test]
    fn from_adjacency_matches_dense_neighbors() {
        let net = random_geometric(24, 8.0, 3);
        let g = SparseGraph::from_adjacency(&net.adjacency);
        for u in 0..24 {
            let dense: Vec<usize> = (0..24)
                .filter(|&v| {
                    v != u && (net.adjacency.weight(u, v) > 0.0 || net.adjacency.weight(v, u) > 0.0)
                })
                .collect();
            let mut sparse: Vec<usize> = g.neighbors(u).iter().map(|&(v, _)| v).collect();
            sparse.sort_unstable();
            assert_eq!(sparse, dense, "node {u}");
        }
    }

    #[test]
    fn cut_state_is_exact_after_seeding() {
        let net = city_grid(5, 6, 7);
        let p = Partitioning::multilevel(&net.adjacency, 3);
        let g = SparseGraph::from_adjacency(&net.adjacency);
        let inc = IncrementalPartitioner::seed(g, &p, IncrementalConfig::default());
        assert_eq!(inc.cut_neighbors(), p.cut_neighbors(&net.adjacency));
        assert_eq!(inc.part_sizes(), p.part_sizes());
    }

    #[test]
    fn empty_delta_is_a_bit_identical_noop() {
        let net = city_grid(4, 5, 9);
        let p = Partitioning::multilevel(&net.adjacency, 2);
        let g = SparseGraph::from_adjacency(&net.adjacency);
        let mut inc = IncrementalPartitioner::seed(g, &p, IncrementalConfig::default());
        let before = inc.assignment().to_vec();
        let stats = inc.apply_delta(&GraphDelta::default());
        assert_eq!(inc.assignment(), &before[..]);
        assert_eq!(stats.moves, 0);
        assert_eq!(stats.dirty_nodes, 0);
        assert!(!stats.rebuilt);
    }

    #[test]
    fn arrivals_are_rehomed_next_to_their_neighbors() {
        // Two 4-cliques, parts = components. A new node attached to the
        // second clique must end up in the second clique's part.
        let mut edges = Vec::new();
        for a in 0..4usize {
            for b in (a + 1)..4 {
                edges.push((a, b, 1.0));
                edges.push((a + 4, b + 4, 1.0));
            }
        }
        let g = SparseGraph::from_edges(8, &edges);
        let p = Partitioning::from_assignment(vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        let mut inc = IncrementalPartitioner::seed(g, &p, IncrementalConfig::default());
        assert_eq!(inc.cut_neighbors(), 0);
        let stats = inc.apply_delta(&GraphDelta {
            added_nodes: 1,
            edges: vec![(8, 4, 1.0), (8, 5, 1.0)],
        });
        assert_eq!(inc.assignment()[8], 1, "arrival joins its neighbors");
        assert_eq!(inc.cut_neighbors(), 0, "repair restores a clean cut");
        assert!(!stats.rebuilt);
    }

    #[test]
    fn quality_drift_triggers_a_full_rebuild() {
        // Start from a pathological partitioning (odd/even stripes over a
        // path) with zero drift tolerance: any mutation's repair cannot
        // reach the baseline recorded at seed time... so force the
        // baseline low by seeding fresh, then wire the graph adversarially
        // until halo blows past (1 + drift) x baseline.
        let g = path(24);
        let mut inc = IncrementalPartitioner::partition_fresh(
            g,
            2,
            IncrementalConfig {
                drift: 0.0,
                halo_depth: 0, // cripple repair so drift must trigger
                ..Default::default()
            },
        );
        let baseline = inc.baseline_halo_bytes();
        assert!(baseline > 0);
        // Cross-wire far ends: halo strictly grows, repair (depth 0 halo,
        // endpoints only) cannot fully recover, fallback must fire
        // eventually.
        let mut rebuilt = false;
        for i in 0..8 {
            let stats = inc.apply_delta(&GraphDelta {
                added_nodes: 0,
                edges: vec![(i, 23 - i, 1.0)],
            });
            rebuilt |= stats.rebuilt;
        }
        assert!(rebuilt, "drift fallback never fired");
        assert_eq!(
            inc.baseline_halo_bytes(),
            inc.halo_bytes(),
            "rebuild resets the baseline"
        );
    }

    #[test]
    fn fresh_solve_is_balanced_and_covers() {
        let net = city_grid(8, 8, 5);
        let g = SparseGraph::from_adjacency(&net.adjacency);
        for k in [2usize, 4, 7] {
            let inc =
                IncrementalPartitioner::partition_fresh(g.clone(), k, IncrementalConfig::default());
            let sizes = inc.part_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), 64, "k={k}");
            assert!(sizes.iter().all(|&s| s > 0), "k={k}: {sizes:?}");
            let cap = balance_cap(64, k, inc.config().balance);
            assert!(sizes.iter().all(|&s| s <= cap), "k={k}: {sizes:?}");
        }
        // Degenerate shapes.
        let one =
            IncrementalPartitioner::partition_fresh(g.clone(), 1, IncrementalConfig::default());
        assert_eq!(one.cut_neighbors(), 0);
        let many = IncrementalPartitioner::partition_fresh(g, 100, IncrementalConfig::default());
        assert_eq!(many.part_sizes().iter().sum::<usize>(), 64);
    }

    #[test]
    fn edge_churn_keeps_cut_state_exact() {
        let net = random_geometric(30, 9.0, 11);
        let g = SparseGraph::from_adjacency(&net.adjacency);
        let mut inc = IncrementalPartitioner::partition_fresh(g, 3, IncrementalConfig::default());
        // A handful of removals, weight changes, and insertions.
        let deltas = [
            GraphDelta {
                added_nodes: 0,
                edges: vec![(0, 7, 1.5), (3, 21, 0.0), (5, 29, 0.4)],
            },
            GraphDelta {
                added_nodes: 1,
                edges: vec![(30, 2, 1.0), (30, 14, 1.0), (0, 7, 0.0)],
            },
        ];
        for d in &deltas {
            inc.apply_delta(d);
            let recomputed = inc
                .partitioning()
                .cut_neighbors(&inc.graph().to_adjacency());
            assert_eq!(inc.cut_neighbors(), recomputed);
        }
    }

    #[test]
    fn delta_between_adjacencies_roundtrips() {
        let a = random_geometric(16, 6.0, 2).adjacency;
        let mut w = a.weights().to_vec();
        w[3 * 16 + 5] = 9.0; // mutate one directed edge
        w[7 * 16 + 1] = 0.0;
        w[16 + 7] = 0.0;
        let b = Adjacency::from_dense(16, w);
        let d = GraphDelta::between(&a, &b);
        let mut g = SparseGraph::from_adjacency(&a);
        for &(u, v, wt) in &d.edges {
            g.set_edge(u, v, wt);
        }
        let target = SparseGraph::from_adjacency(&b);
        for u in 0..16 {
            let mut got: Vec<(usize, u32)> = g
                .neighbors(u)
                .iter()
                .map(|&(v, w)| (v, w.to_bits()))
                .collect();
            let mut want: Vec<(usize, u32)> = target
                .neighbors(u)
                .iter()
                .map(|&(v, w)| (v, w.to_bits()))
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "node {u}");
        }
    }
}
