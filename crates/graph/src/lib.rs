//! # st-graph
//!
//! Graph substrate for the PGT-I reproduction: sensor-network adjacency
//! construction (Gaussian kernel over road/geodesic distances, as in DCRNN),
//! CSR sparse matrices with sparse×dense products, the diffusion /
//! Laplacian transition operators the ST-GNN model zoo consumes, and the
//! graph-partitioning layer (paper §7) every distributed consumer routes
//! through.
//!
//! ## Partitioning in one example
//!
//! ```
//! use st_graph::partition::{HaloCostModel, PartitionerKind};
//! use st_graph::generators;
//!
//! // A 32-sensor freeway corridor, split 4 ways by the multilevel
//! // partitioner (the default choice everywhere a config asks).
//! let net = generators::highway_corridor(32, 1, 7);
//! let parts = PartitionerKind::Multilevel.partition(&net.adjacency, None, 4, 12);
//!
//! // Quality is judged in modeled halo bytes, not raw edge cut.
//! let cost = HaloCostModel::new(12, 1);
//! let bytes = cost.halo_bytes(&net.adjacency, &parts);
//! assert!(bytes > 0, "a 4-way split of a connected graph cuts something");
//! ```

#![warn(missing_docs)]

pub mod adjacency;
pub mod csr;
pub mod generators;
pub mod partition;
pub mod transition;

pub use adjacency::Adjacency;
pub use csr::Csr;
pub use generators::SensorNetwork;
pub use partition::{
    GraphDelta, HaloCostModel, IncrementalConfig, IncrementalPartitioner, MultilevelConfig,
    PartitionerKind, Partitioning, RepartitionPolicy, SparseGraph, Subgraph,
};
pub use transition::{diffusion_supports, sym_norm_adjacency};
