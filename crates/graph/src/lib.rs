//! # st-graph
//!
//! Graph substrate for the PGT-I reproduction: sensor-network adjacency
//! construction (Gaussian kernel over road/geodesic distances, as in DCRNN),
//! CSR sparse matrices with sparse×dense products, and the diffusion /
//! Laplacian transition operators the ST-GNN model zoo consumes.

pub mod adjacency;
pub mod csr;
pub mod generators;
pub mod partition;
pub mod transition;

pub use adjacency::Adjacency;
pub use csr::Csr;
pub use generators::SensorNetwork;
pub use partition::{Partitioning, Subgraph};
pub use transition::{diffusion_supports, sym_norm_adjacency};
