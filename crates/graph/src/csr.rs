//! Compressed sparse row matrices and sparse×dense products.
//!
//! The diffusion convolution at the heart of DCRNN multiplies sparse
//! random-walk transition matrices against dense node-feature matrices;
//! CSR `spmm` is the kernel that makes that cheap for road networks whose
//! adjacency is overwhelmingly sparse.

use st_tensor::{Result, Tensor, TensorError};

/// A CSR sparse matrix of shape `[rows, cols]`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl Csr {
    /// Build from a dense row-major buffer, dropping exact zeros.
    pub fn from_dense(rows: usize, cols: usize, dense: &[f32]) -> Self {
        assert_eq!(dense.len(), rows * cols);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build from COO triplets (row, col, value). Duplicates are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            assert!(r < rows && c < cols, "triplet out of bounds");
            if let (Some(&lc), Some(lv)) = (col_idx.last(), values.last_mut()) {
                if row_of(&row_ptr, col_idx.len() - 1) == r && lc == c {
                    *lv += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] = col_idx.len();
        }
        // Make row_ptr cumulative over empty rows.
        for r in 1..=rows {
            if row_ptr[r] < row_ptr[r - 1] {
                row_ptr[r] = row_ptr[r - 1];
            }
        }
        return Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };

        fn row_of(row_ptr: &[usize], nz: usize) -> usize {
            // Find the row that currently ends past `nz` — only used while
            // building, where the last pushed entry belongs to the last row
            // with a nonzero row_ptr update.
            match row_ptr.iter().rposition(|&p| p == nz + 1) {
                Some(r) => r - 1,
                None => usize::MAX,
            }
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Matrix dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate the non-zeros of row `r` as `(col, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Dense `[rows, cols]` tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut d = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                d[r * self.cols + c] += v;
            }
        }
        Tensor::from_vec(d, [self.rows, self.cols]).expect("rows*cols buffer")
    }

    /// Transposed copy (CSR of the transpose).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 1..=self.cols {
            counts[i] += counts[i - 1];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut next = counts.clone();
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let pos = next[c];
                col_idx[pos] = r;
                values[pos] = v;
                next[c] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr: counts,
            col_idx,
            values,
        }
    }

    /// Sparse × dense product: `Y[rows, n] = self[rows, cols] @ X[cols, n]`.
    ///
    /// Dispatches through the active [`st_tensor::backend::Kernels`]
    /// backend and reports into the spmm kernel-time counter.
    pub fn spmm(&self, x: &Tensor) -> Result<Tensor> {
        if x.rank() != 2 || x.dim(0) != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "spmm",
                lhs: vec![self.rows, self.cols],
                rhs: x.dims().to_vec(),
            });
        }
        let n = x.dim(1);
        let xc = x.contiguous();
        let xs = xc.as_slice().expect("contiguous");
        let mut out = vec![0.0f32; self.rows * n];
        st_tensor::backend::timed(st_tensor::backend::KernelClass::Spmm, || {
            st_tensor::backend::kernels().spmm(
                &self.row_ptr,
                &self.col_idx,
                &self.values,
                xs,
                &mut out,
                self.rows,
                n,
            )
        });
        Tensor::from_vec(out, [self.rows, n])
    }

    /// Batched sparse × dense: applies `spmm` to each `X[b]` of a
    /// `[B, cols, n]` tensor, producing `[B, rows, n]`.
    ///
    /// Writes every batch straight into one output buffer (the historical
    /// path materialized a tensor per batch and stacked them).
    pub fn spmm_batched(&self, x: &Tensor) -> Result<Tensor> {
        if x.rank() != 3 || x.dim(1) != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "spmm_batched",
                lhs: vec![self.rows, self.cols],
                rhs: x.dims().to_vec(),
            });
        }
        let b = x.dim(0);
        let n = x.dim(2);
        let xc = x.contiguous();
        let xs = xc.as_slice().expect("contiguous");
        let mut out = vec![0.0f32; b * self.rows * n];
        if self.rows * n > 0 {
            st_tensor::backend::timed(st_tensor::backend::KernelClass::Spmm, || {
                let kernels = st_tensor::backend::kernels();
                for (i, slab) in out.chunks_mut(self.rows * n).enumerate() {
                    kernels.spmm(
                        &self.row_ptr,
                        &self.col_idx,
                        &self.values,
                        &xs[i * self.cols * n..(i + 1) * self.cols * n],
                        slab,
                        self.rows,
                        n,
                    );
                }
            });
        }
        Tensor::from_vec(out, [b, self.rows, n])
    }

    /// Scale row `r` by `s[r]` (used for degree normalization).
    pub fn scale_rows(&self, s: &[f32]) -> Csr {
        assert_eq!(s.len(), self.rows);
        let mut out = self.clone();
        for (r, &scale) in s.iter().enumerate() {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            for v in &mut out.values[lo..hi] {
                *v *= scale;
            }
        }
        out
    }

    /// Estimated bytes of this sparse matrix (for memory accounting).
    pub fn approx_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> (usize, usize, Vec<f32>) {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        (3, 3, vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0])
    }

    #[test]
    fn dense_roundtrip() {
        let (r, c, d) = sample_dense();
        let m = Csr::from_dense(r, c, &d);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.to_dense().to_vec(), d);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let i = Csr::identity(3);
        let x = Tensor::arange(6).reshape([3, 2]).unwrap();
        assert_eq!(i.spmm(&x).unwrap().to_vec(), x.to_vec());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let (r, c, d) = sample_dense();
        let m = Csr::from_dense(r, c, &d);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]).unwrap();
        let sparse = m.spmm(&x).unwrap();
        let dense = st_tensor::ops::matmul(&m.to_dense(), &x).unwrap();
        assert_eq!(sparse.to_vec(), dense.to_vec());
    }

    #[test]
    fn transpose_matches_dense() {
        let (r, c, d) = sample_dense();
        let m = Csr::from_dense(r, c, &d);
        let t = m.transpose();
        let dense_t = m.to_dense().t().unwrap().contiguous();
        assert_eq!(t.to_dense().to_vec(), dense_t.to_vec());
    }

    #[test]
    fn spmm_batched_applies_per_batch() {
        let m = Csr::identity(2);
        let x = Tensor::arange(8).reshape([2, 2, 2]).unwrap();
        let y = m.spmm_batched(&x).unwrap();
        assert_eq!(y.to_vec(), x.to_vec());
    }

    #[test]
    fn scale_rows_normalizes() {
        let (r, c, d) = sample_dense();
        let m = Csr::from_dense(r, c, &d);
        let scaled = m.scale_rows(&[1.0, 1.0, 0.5]);
        let dense = scaled.to_dense().to_vec();
        assert_eq!(dense[6], 1.5);
        assert_eq!(dense[7], 2.0);
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = Csr::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 5.0)]);
        let d = m.to_dense().to_vec();
        assert_eq!(d, vec![0.0, 3.0, 5.0, 0.0]);
    }

    #[test]
    fn spmm_shape_mismatch_errors() {
        let m = Csr::identity(3);
        let x = Tensor::ones([2, 2]);
        assert!(m.spmm(&x).is_err());
    }
}
