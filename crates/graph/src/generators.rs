//! Synthetic sensor-network generators.
//!
//! The paper's datasets are sensor networks over real road systems (PeMS,
//! METR-LA), counties (Chickenpox-Hungary) or wind farms (Windmill). We
//! cannot ship those feeds, so we generate networks with the same structural
//! character: a **highway corridor** generator (sensors strung along noisy
//! polylines, like loop detectors on freeways) and a **random geometric**
//! generator (spatially clustered nodes, like counties/windmills). Both are
//! fully seeded for reproducibility.

use crate::adjacency::Adjacency;
use crate::partition::incremental::{GraphDelta, SparseGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated sensor network: coordinates plus weighted adjacency.
#[derive(Debug, Clone)]
pub struct SensorNetwork {
    /// Sensor coordinates in an abstract 2-D plane.
    pub coords: Vec<(f32, f32)>,
    /// Gaussian-kernel weighted adjacency over the coordinates.
    pub adjacency: Adjacency,
}

impl SensorNetwork {
    /// Number of sensors.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }
}

/// Sensors placed along `lanes` noisy horizontal corridors — a caricature of
/// freeway loop-detector networks like PeMS. Neighboring sensors along a
/// corridor end up strongly connected; corridors interact weakly.
pub fn highway_corridor(n: usize, lanes: usize, seed: u64) -> SensorNetwork {
    assert!(n > 0 && lanes > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let per_lane = n.div_ceil(lanes);
    let mut coords = Vec::with_capacity(n);
    for lane in 0..lanes {
        let y0 = lane as f32 * 5.0;
        for i in 0..per_lane {
            if coords.len() == n {
                break;
            }
            let x = i as f32 + rng.gen_range(-0.2..0.2);
            let y = y0 + rng.gen_range(-0.5..0.5);
            coords.push((x, y));
        }
    }
    let adjacency = Adjacency::from_coordinates(&coords, Some(2.0), 0.05);
    SensorNetwork { coords, adjacency }
}

/// Uniformly random sensors in a square with Gaussian-kernel connectivity —
/// a caricature of county/wind-farm layouts.
pub fn random_geometric(n: usize, extent: f32, seed: u64) -> SensorNetwork {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let coords: Vec<(f32, f32)> = (0..n)
        .map(|_| (rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
        .collect();
    // Sigma scaled to the typical nearest-neighbor distance so the graph
    // stays sparse as n grows.
    let sigma = extent / (n as f32).sqrt() * 2.0;
    let adjacency = Adjacency::from_coordinates(&coords, Some(sigma), 0.05);
    SensorNetwork { coords, adjacency }
}

/// Sensors on a jittered `rows × cols` lattice — a caricature of urban
/// arterial grids (city block detectors), the topology where partition
/// boundaries cost the most because every interior node has four strong
/// neighbors.
pub fn city_grid(rows: usize, cols: usize, seed: u64) -> SensorNetwork {
    assert!(rows > 0 && cols > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            coords.push((
                c as f32 + rng.gen_range(-0.15..0.15),
                r as f32 + rng.gen_range(-0.15..0.15),
            ));
        }
    }
    let adjacency = Adjacency::from_coordinates(&coords, Some(1.0), 0.2);
    SensorNetwork { coords, adjacency }
}

/// A scale-free (Barabási–Albert preferential-attachment) network: each
/// new node attaches `m` edges to existing nodes with probability
/// proportional to their degree. Hubs emerge, so edge-cut-oblivious
/// partitioners that slice through a hub replicate it everywhere — the
/// adversarial case for the halo cost model. Coordinates are random (the
/// topology, unlike the geometric generators, is not planar).
pub fn scale_free(n: usize, m: usize, seed: u64) -> SensorNetwork {
    assert!(n > m && m > 0, "need n > m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights = vec![0.0f32; n * n];
    // Degree-weighted target list: node i appears once per incident edge.
    let mut targets: Vec<usize> = (0..=m).collect();
    for u in (m + 1)..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let v = targets[rng.gen_range(0..targets.len())];
            if v != u && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            weights[u * n + v] = 1.0;
            weights[v * n + u] = 1.0;
            targets.push(u);
            targets.push(v);
        }
    }
    // Seed clique over the first m+1 nodes so early attachments connect.
    for i in 0..=m {
        for j in 0..=m {
            if i != j {
                weights[i * n + j] = 1.0;
            }
        }
    }
    let coords: Vec<(f32, f32)> = (0..n)
        .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
        .collect();
    SensorNetwork {
        coords,
        adjacency: Adjacency::from_dense(n, weights),
    }
}

/// A generated sensor network in adjacency-list form — the representation
/// the city-scale (10⁵–10⁶ node) dynamic workloads use, where a dense
/// `N×N` matrix would not fit in memory.
#[derive(Debug, Clone)]
pub struct SparseNetwork {
    /// Sensor coordinates in an abstract 2-D plane.
    pub coords: Vec<(f32, f32)>,
    /// Undirected weighted adjacency lists over the coordinates.
    pub graph: SparseGraph,
}

impl SparseNetwork {
    /// Number of sensors.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }
}

/// Sparse [`city_grid`]: the same jittered `rows × cols` lattice with
/// Gaussian-kernel weights (`σ = 1`, threshold 0.2), but storing only the
/// 4-neighbor lattice edges instead of an `N×N` matrix — city-block
/// topology at city scale.
pub fn city_grid_sparse(rows: usize, cols: usize, seed: u64) -> SparseNetwork {
    assert!(rows > 0 && cols > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut coords = Vec::with_capacity(n);
    for r in 0..rows {
        for c in 0..cols {
            coords.push((
                c as f32 + rng.gen_range(-0.15..0.15),
                r as f32 + rng.gen_range(-0.15..0.15),
            ));
        }
    }
    let mut edges = Vec::with_capacity(2 * n);
    let push = |edges: &mut Vec<(usize, usize, f32)>, u: usize, v: usize| {
        let (dx, dy) = (coords[u].0 - coords[v].0, coords[u].1 - coords[v].1);
        let w = (-(dx * dx + dy * dy)).exp();
        if w >= 0.2 {
            edges.push((u, v, w));
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            if c + 1 < cols {
                push(&mut edges, u, u + 1);
            }
            if r + 1 < rows {
                push(&mut edges, u, u + cols);
            }
        }
    }
    let graph = SparseGraph::from_edges(n, &edges);
    SparseNetwork { coords, graph }
}

/// Sparse [`scale_free`]: the same Barabási–Albert preferential-attachment
/// process in adjacency-list form, viable at 10⁵–10⁶ nodes.
pub fn scale_free_sparse(n: usize, m: usize, seed: u64) -> SparseNetwork {
    assert!(n > m && m > 0, "need n > m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * m);
    // Seed clique over the first m+1 nodes so early attachments connect.
    for i in 0..=m {
        for j in (i + 1)..=m {
            edges.push((i, j, 1.0));
        }
    }
    // Degree-weighted target list: node i appears once per incident edge.
    let mut targets: Vec<usize> = (0..=m).collect();
    for u in (m + 1)..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let v = targets[rng.gen_range(0..targets.len())];
            if v != u && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            edges.push((u, v, 1.0));
            targets.push(u);
            targets.push(v);
        }
    }
    let coords: Vec<(f32, f32)> = (0..n)
        .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
        .collect();
    let graph = SparseGraph::from_edges(n, &edges);
    SparseNetwork { coords, graph }
}

/// How much a dynamic workload mutates per timeline entry.
#[derive(Debug, Clone, Copy)]
pub struct MutationConfig {
    /// Edge-churn operations per entry (each removes, reweights, or adds
    /// one edge around a random node).
    pub edge_churn: usize,
    /// New nodes arriving per entry.
    pub node_arrivals: usize,
    /// Edges each arriving node attaches to existing nodes.
    pub attach_edges: usize,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            edge_churn: 16,
            node_arrivals: 0,
            attach_edges: 2,
        }
    }
}

/// Generate a streamed-mutation workload: `entries - 1` seeded
/// [`GraphDelta`]s evolving `net` one timeline entry at a time.
///
/// Each entry applies [`MutationConfig::edge_churn`] local operations —
/// half remove or halve a random incident edge, half add a 2-hop shortcut
/// (falling back to a random endpoint when no 2-hop candidate exists) —
/// then lands [`MutationConfig::node_arrivals`] new nodes, each attaching
/// uniformly at random. Deltas chain: delta `t` is relative to the graph
/// after deltas `0..t` have been applied.
pub fn mutation_stream(
    net: &SparseNetwork,
    entries: usize,
    cfg: MutationConfig,
    seed: u64,
) -> Vec<GraphDelta> {
    assert!(entries > 0, "a timeline has at least one entry");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = net.graph.clone();
    let mut deltas = Vec::with_capacity(entries - 1);
    for _ in 1..entries {
        let mut delta = GraphDelta {
            added_nodes: cfg.node_arrivals,
            edges: Vec::new(),
        };
        for _ in 0..cfg.edge_churn {
            let n = g.num_nodes();
            let u = rng.gen_range(0..n);
            if rng.gen_bool(0.5) {
                // Decay: remove or halve one incident edge of `u`.
                let deg = g.degree(u);
                if deg == 0 {
                    continue;
                }
                let (v, w) = g.neighbors(u)[rng.gen_range(0..deg)];
                let w = if rng.gen_bool(0.5) { 0.0 } else { 0.5 * w };
                g.set_edge(u, v, w);
                delta.edges.push((u, v, w));
            } else {
                // Growth: shortcut `u` to a 2-hop neighbor if one exists,
                // otherwise to a random distinct node.
                let two_hop = g
                    .neighbors(u)
                    .first()
                    .and_then(|&(v, _)| {
                        g.neighbors(v)
                            .iter()
                            .map(|&(x, _)| x)
                            .find(|&x| x != u && g.edge_weight(u, x) == 0.0)
                    })
                    .or_else(|| {
                        let x = rng.gen_range(0..n);
                        (x != u).then_some(x)
                    });
                if let Some(x) = two_hop {
                    g.set_edge(u, x, 1.0);
                    delta.edges.push((u, x, 1.0));
                }
            }
        }
        let first_new = g.num_nodes();
        g.add_nodes(cfg.node_arrivals);
        for u in first_new..g.num_nodes() {
            for _ in 0..cfg.attach_edges {
                let v = rng.gen_range(0..first_new);
                g.set_edge(u, v, 1.0);
                delta.edges.push((u, v, 1.0));
            }
        }
        deltas.push(delta);
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corridor_has_requested_size_and_is_seeded() {
        let a = highway_corridor(50, 2, 7);
        let b = highway_corridor(50, 2, 7);
        assert_eq!(a.num_nodes(), 50);
        assert_eq!(a.coords, b.coords, "same seed, same network");
        let c = highway_corridor(50, 2, 8);
        assert_ne!(a.coords, c.coords, "different seed, different network");
    }

    #[test]
    fn corridor_neighbors_are_connected() {
        let net = highway_corridor(20, 1, 3);
        // Adjacent sensors on the same lane are ~1 unit apart -> strong edge.
        let w = net.adjacency.weight(0, 1);
        assert!(w > 0.5, "adjacent corridor sensors weakly connected: {w}");
    }

    #[test]
    fn geometric_network_is_sparse_for_large_n() {
        let net = random_geometric(200, 100.0, 5);
        let density = net.adjacency.num_edges() as f32 / (200.0 * 200.0);
        assert!(density < 0.2, "density {density} too high");
        // But not empty (self loops at minimum).
        assert!(net.adjacency.num_edges() >= 200);
    }

    #[test]
    fn grid_is_seeded_and_lattice_connected() {
        let a = city_grid(4, 5, 3);
        let b = city_grid(4, 5, 3);
        assert_eq!(a.num_nodes(), 20);
        assert_eq!(a.coords, b.coords, "same seed, same grid");
        // Horizontal and vertical lattice neighbors are strongly connected.
        assert!(a.adjacency.weight(0, 1) > 0.3, "row neighbor");
        assert!(a.adjacency.weight(0, 5) > 0.3, "column neighbor");
    }

    #[test]
    fn scale_free_has_hubs() {
        let net = scale_free(60, 2, 9);
        assert_eq!(net.num_nodes(), 60);
        let mut degrees: Vec<usize> = (0..60)
            .map(|i| {
                (0..60)
                    .filter(|&j| net.adjacency.weight(i, j) > 0.0)
                    .count()
            })
            .collect();
        degrees.sort_unstable();
        // Preferential attachment: the max degree dwarfs the median.
        assert!(
            degrees[59] >= 2 * degrees[30],
            "no hub: max {} median {}",
            degrees[59],
            degrees[30]
        );
        // Every node has at least m = 2 edges (attachment or seed clique).
        assert!(degrees[0] >= 2);
    }

    #[test]
    fn sparse_grid_matches_lattice_structure() {
        let net = city_grid_sparse(4, 5, 3);
        assert_eq!(net.num_nodes(), 20);
        let again = city_grid_sparse(4, 5, 3);
        assert_eq!(net.coords, again.coords, "same seed, same grid");
        // Interior nodes have exactly their 4 lattice neighbors.
        assert_eq!(net.graph.degree(6), 4);
        assert!(net.graph.edge_weight(0, 1) > 0.2, "row neighbor");
        assert!(net.graph.edge_weight(0, 5) > 0.2, "column neighbor");
        assert_eq!(net.graph.edge_weight(0, 6), 0.0, "no diagonal edges");
    }

    #[test]
    fn sparse_scale_free_has_hubs_and_min_degree() {
        let net = scale_free_sparse(300, 2, 9);
        assert_eq!(net.num_nodes(), 300);
        let mut degrees: Vec<usize> = (0..300).map(|i| net.graph.degree(i)).collect();
        degrees.sort_unstable();
        assert!(
            degrees[299] >= 2 * degrees[150],
            "no hub: max {} median {}",
            degrees[299],
            degrees[150]
        );
        assert!(degrees[0] >= 2, "every node attaches m = 2 edges");
    }

    #[test]
    fn mutation_stream_is_seeded_and_chains() {
        let net = city_grid_sparse(8, 8, 1);
        let cfg = MutationConfig {
            edge_churn: 6,
            node_arrivals: 1,
            attach_edges: 2,
        };
        let a = mutation_stream(&net, 5, cfg, 42);
        let b = mutation_stream(&net, 5, cfg, 42);
        assert_eq!(a.len(), 4, "entries - 1 deltas");
        for (da, db) in a.iter().zip(&b) {
            assert_eq!(da.added_nodes, db.added_nodes);
            assert_eq!(da.edges, db.edges, "same seed, same stream");
        }
        // Replaying the chain keeps every edge endpoint in bounds.
        let mut g = net.graph.clone();
        for d in &a {
            let before = g.num_nodes();
            g.add_nodes(d.added_nodes);
            for &(u, v, w) in &d.edges {
                assert!(u < g.num_nodes() && v < g.num_nodes());
                g.set_edge(u, v, w);
            }
            assert_eq!(g.num_nodes(), before + d.added_nodes);
        }
        assert_eq!(g.num_nodes(), 64 + 4);
    }

    #[test]
    fn geometric_network_within_extent() {
        let net = random_geometric(50, 10.0, 9);
        assert!(net
            .coords
            .iter()
            .all(|&(x, y)| (0.0..10.0).contains(&x) && (0.0..10.0).contains(&y)));
    }
}
