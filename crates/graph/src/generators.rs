//! Synthetic sensor-network generators.
//!
//! The paper's datasets are sensor networks over real road systems (PeMS,
//! METR-LA), counties (Chickenpox-Hungary) or wind farms (Windmill). We
//! cannot ship those feeds, so we generate networks with the same structural
//! character: a **highway corridor** generator (sensors strung along noisy
//! polylines, like loop detectors on freeways) and a **random geometric**
//! generator (spatially clustered nodes, like counties/windmills). Both are
//! fully seeded for reproducibility.

use crate::adjacency::Adjacency;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated sensor network: coordinates plus weighted adjacency.
#[derive(Debug, Clone)]
pub struct SensorNetwork {
    /// Sensor coordinates in an abstract 2-D plane.
    pub coords: Vec<(f32, f32)>,
    /// Gaussian-kernel weighted adjacency over the coordinates.
    pub adjacency: Adjacency,
}

impl SensorNetwork {
    /// Number of sensors.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }
}

/// Sensors placed along `lanes` noisy horizontal corridors — a caricature of
/// freeway loop-detector networks like PeMS. Neighboring sensors along a
/// corridor end up strongly connected; corridors interact weakly.
pub fn highway_corridor(n: usize, lanes: usize, seed: u64) -> SensorNetwork {
    assert!(n > 0 && lanes > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let per_lane = n.div_ceil(lanes);
    let mut coords = Vec::with_capacity(n);
    for lane in 0..lanes {
        let y0 = lane as f32 * 5.0;
        for i in 0..per_lane {
            if coords.len() == n {
                break;
            }
            let x = i as f32 + rng.gen_range(-0.2..0.2);
            let y = y0 + rng.gen_range(-0.5..0.5);
            coords.push((x, y));
        }
    }
    let adjacency = Adjacency::from_coordinates(&coords, Some(2.0), 0.05);
    SensorNetwork { coords, adjacency }
}

/// Uniformly random sensors in a square with Gaussian-kernel connectivity —
/// a caricature of county/wind-farm layouts.
pub fn random_geometric(n: usize, extent: f32, seed: u64) -> SensorNetwork {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let coords: Vec<(f32, f32)> = (0..n)
        .map(|_| (rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
        .collect();
    // Sigma scaled to the typical nearest-neighbor distance so the graph
    // stays sparse as n grows.
    let sigma = extent / (n as f32).sqrt() * 2.0;
    let adjacency = Adjacency::from_coordinates(&coords, Some(sigma), 0.05);
    SensorNetwork { coords, adjacency }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corridor_has_requested_size_and_is_seeded() {
        let a = highway_corridor(50, 2, 7);
        let b = highway_corridor(50, 2, 7);
        assert_eq!(a.num_nodes(), 50);
        assert_eq!(a.coords, b.coords, "same seed, same network");
        let c = highway_corridor(50, 2, 8);
        assert_ne!(a.coords, c.coords, "different seed, different network");
    }

    #[test]
    fn corridor_neighbors_are_connected() {
        let net = highway_corridor(20, 1, 3);
        // Adjacent sensors on the same lane are ~1 unit apart -> strong edge.
        let w = net.adjacency.weight(0, 1);
        assert!(w > 0.5, "adjacent corridor sensors weakly connected: {w}");
    }

    #[test]
    fn geometric_network_is_sparse_for_large_n() {
        let net = random_geometric(200, 100.0, 5);
        let density = net.adjacency.num_edges() as f32 / (200.0 * 200.0);
        assert!(density < 0.2, "density {density} too high");
        // But not empty (self loops at minimum).
        assert!(net.adjacency.num_edges() >= 200);
    }

    #[test]
    fn geometric_network_within_extent() {
        let net = random_geometric(50, 10.0, 9);
        assert!(net
            .coords
            .iter()
            .all(|&(x, y)| (0.0..10.0).contains(&x) && (0.0..10.0).contains(&y)));
    }
}
