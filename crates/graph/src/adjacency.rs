//! Dense weighted adjacency matrices for sensor networks.
//!
//! The paper (§2.1) builds the weighted adjacency from sensor coordinates:
//! pairwise distances pass through a Gaussian kernel
//! `w_ij = exp(-d_ij² / σ²)` and weights below a threshold `κ` are dropped —
//! the construction introduced by DCRNN (Li et al. 2018) and reused by PGT.

use st_tensor::Tensor;

/// A dense `N×N` weighted adjacency matrix.
#[derive(Debug, Clone)]
pub struct Adjacency {
    n: usize,
    weights: Vec<f32>,
}

impl Adjacency {
    /// Build from a row-major weight buffer.
    pub fn from_dense(n: usize, weights: Vec<f32>) -> Self {
        assert_eq!(weights.len(), n * n, "adjacency must be n*n");
        Adjacency { n, weights }
    }

    /// Gaussian-kernel adjacency from 2-D sensor coordinates.
    ///
    /// `sigma` defaults to the std-dev of the distance distribution when
    /// `None`, matching the DCRNN preprocessing script; weights below
    /// `threshold` are zeroed.
    pub fn from_coordinates(coords: &[(f32, f32)], sigma: Option<f32>, threshold: f32) -> Self {
        let n = coords.len();
        let mut dist = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = coords[i].0 - coords[j].0;
                let dy = coords[i].1 - coords[j].1;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt();
            }
        }
        let sigma = sigma.unwrap_or_else(|| {
            let mean = dist.iter().sum::<f32>() / (n * n) as f32;
            let var = dist.iter().map(|d| (d - mean).powi(2)).sum::<f32>() / (n * n) as f32;
            var.sqrt().max(1e-6)
        });
        let s2 = sigma * sigma;
        let weights = dist
            .iter()
            .map(|&d| {
                let w = (-d * d / s2).exp();
                if w < threshold {
                    0.0
                } else {
                    w
                }
            })
            .collect();
        Adjacency { n, weights }
    }

    /// Number of graph nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Weight of edge `i → j`.
    pub fn weight(&self, i: usize, j: usize) -> f32 {
        self.weights[i * self.n + j]
    }

    /// Row-major weight buffer.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Number of non-zero directed edges.
    pub fn num_edges(&self) -> usize {
        self.weights.iter().filter(|&&w| w != 0.0).count()
    }

    /// As a dense tensor `[N, N]`.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.weights.clone(), [self.n, self.n]).expect("n*n buffer")
    }

    /// Out-degree (row sum) of each node.
    pub fn out_degrees(&self) -> Vec<f32> {
        (0..self.n)
            .map(|i| self.weights[i * self.n..(i + 1) * self.n].iter().sum())
            .collect()
    }

    /// Transpose (reverse all edges).
    pub fn transpose(&self) -> Adjacency {
        let mut w = vec![0.0f32; self.n * self.n];
        for i in 0..self.n {
            for j in 0..self.n {
                w[j * self.n + i] = self.weights[i * self.n + j];
            }
        }
        Adjacency {
            n: self.n,
            weights: w,
        }
    }

    /// Make the adjacency symmetric by averaging with its transpose.
    pub fn symmetrized(&self) -> Adjacency {
        let t = self.transpose();
        let weights = self
            .weights
            .iter()
            .zip(t.weights.iter())
            .map(|(a, b)| 0.5 * (a + b))
            .collect();
        Adjacency { n: self.n, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_kernel_properties() {
        let coords = vec![(0.0, 0.0), (1.0, 0.0), (10.0, 0.0)];
        let adj = Adjacency::from_coordinates(&coords, Some(2.0), 0.01);
        // Self-distance 0 → weight 1.
        assert!((adj.weight(0, 0) - 1.0).abs() < 1e-6);
        // Closer pairs have higher weight.
        assert!(adj.weight(0, 1) > adj.weight(0, 2));
        // Distance 10 with sigma 2 → weight e^{-25} ≈ 0, thresholded away.
        assert_eq!(adj.weight(0, 2), 0.0);
    }

    #[test]
    fn auto_sigma_is_positive_and_produces_edges() {
        let coords: Vec<(f32, f32)> = (0..10).map(|i| (i as f32, 0.0)).collect();
        let adj = Adjacency::from_coordinates(&coords, None, 0.1);
        assert!(adj.num_edges() >= 10, "at least the self-loops survive");
    }

    #[test]
    fn transpose_reverses_edges() {
        let adj = Adjacency::from_dense(2, vec![0.0, 1.0, 0.0, 0.0]);
        let t = adj.transpose();
        assert_eq!(t.weight(1, 0), 1.0);
        assert_eq!(t.weight(0, 1), 0.0);
    }

    #[test]
    fn symmetrize_averages() {
        let adj = Adjacency::from_dense(2, vec![0.0, 2.0, 0.0, 0.0]);
        let s = adj.symmetrized();
        assert_eq!(s.weight(0, 1), 1.0);
        assert_eq!(s.weight(1, 0), 1.0);
    }

    #[test]
    fn degrees_sum_rows() {
        let adj = Adjacency::from_dense(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(adj.out_degrees(), vec![3.0, 7.0]);
    }
}
