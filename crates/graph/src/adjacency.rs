//! Dense weighted adjacency matrices for sensor networks.
//!
//! The paper (§2.1) builds the weighted adjacency from sensor coordinates:
//! pairwise distances pass through a Gaussian kernel
//! `w_ij = exp(-d_ij² / σ²)` and weights below a threshold `κ` are dropped —
//! the construction introduced by DCRNN (Li et al. 2018) and reused by PGT.

use std::sync::{Arc, OnceLock};

use st_tensor::Tensor;

/// Shared weight storage: the row-major buffer plus a lazily-computed
/// content fingerprint used to short-circuit topology comparisons.
#[derive(Debug)]
struct Weights {
    data: Vec<f32>,
    fingerprint: OnceLock<u64>,
}

impl Weights {
    fn new(data: Vec<f32>) -> Self {
        Weights {
            data,
            fingerprint: OnceLock::new(),
        }
    }

    /// FNV-1a over the raw weight bits, computed once per buffer.
    fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &w in &self.data {
                for b in w.to_bits().to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            h
        })
    }
}

/// A dense `N×N` weighted adjacency matrix.
///
/// Weight storage is behind an [`Arc`]: clones share the buffer, so a
/// timeline of `T` entries that reuses one topology costs one matrix, and
/// [`Adjacency::same_topology`] answers in O(1) for shared or
/// already-fingerprinted buffers.
#[derive(Debug, Clone)]
pub struct Adjacency {
    n: usize,
    weights: Arc<Weights>,
}

impl Adjacency {
    /// Build from a row-major weight buffer.
    pub fn from_dense(n: usize, weights: Vec<f32>) -> Self {
        assert_eq!(weights.len(), n * n, "adjacency must be n*n");
        Adjacency {
            n,
            weights: Arc::new(Weights::new(weights)),
        }
    }

    /// Gaussian-kernel adjacency from 2-D sensor coordinates.
    ///
    /// `sigma` defaults to the std-dev of the distance distribution when
    /// `None`, matching the DCRNN preprocessing script; weights below
    /// `threshold` are zeroed.
    pub fn from_coordinates(coords: &[(f32, f32)], sigma: Option<f32>, threshold: f32) -> Self {
        let n = coords.len();
        let mut dist = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = coords[i].0 - coords[j].0;
                let dy = coords[i].1 - coords[j].1;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt();
            }
        }
        let sigma = sigma.unwrap_or_else(|| {
            let mean = dist.iter().sum::<f32>() / (n * n) as f32;
            let var = dist.iter().map(|d| (d - mean).powi(2)).sum::<f32>() / (n * n) as f32;
            var.sqrt().max(1e-6)
        });
        let s2 = sigma * sigma;
        let weights = dist
            .iter()
            .map(|&d| {
                let w = (-d * d / s2).exp();
                if w < threshold {
                    0.0
                } else {
                    w
                }
            })
            .collect();
        Adjacency::from_dense(n, weights)
    }

    /// Whether two adjacencies have identical weights, cheaply.
    ///
    /// Checks shared storage first (`Arc` pointer equality — the common
    /// case for frozen-topology timelines), then the cached FNV
    /// fingerprint, and only falls back to a full buffer compare on a
    /// fingerprint collision.
    pub fn same_topology(&self, other: &Adjacency) -> bool {
        if self.n != other.n {
            return false;
        }
        if Arc::ptr_eq(&self.weights, &other.weights) {
            return true;
        }
        self.weights.fingerprint() == other.weights.fingerprint()
            && self.weights.data == other.weights.data
    }

    /// Number of graph nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Weight of edge `i → j`.
    pub fn weight(&self, i: usize, j: usize) -> f32 {
        self.weights.data[i * self.n + j]
    }

    /// Row-major weight buffer.
    pub fn weights(&self) -> &[f32] {
        &self.weights.data
    }

    /// Number of non-zero directed edges.
    pub fn num_edges(&self) -> usize {
        self.weights.data.iter().filter(|&&w| w != 0.0).count()
    }

    /// As a dense tensor `[N, N]`.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.weights.data.clone(), [self.n, self.n]).expect("n*n buffer")
    }

    /// Out-degree (row sum) of each node.
    pub fn out_degrees(&self) -> Vec<f32> {
        (0..self.n)
            .map(|i| self.weights.data[i * self.n..(i + 1) * self.n].iter().sum())
            .collect()
    }

    /// Transpose (reverse all edges).
    pub fn transpose(&self) -> Adjacency {
        let mut w = vec![0.0f32; self.n * self.n];
        for i in 0..self.n {
            for j in 0..self.n {
                w[j * self.n + i] = self.weights.data[i * self.n + j];
            }
        }
        Adjacency::from_dense(self.n, w)
    }

    /// Make the adjacency symmetric by averaging with its transpose.
    pub fn symmetrized(&self) -> Adjacency {
        let t = self.transpose();
        let weights = self
            .weights
            .data
            .iter()
            .zip(t.weights.data.iter())
            .map(|(a, b)| 0.5 * (a + b))
            .collect();
        Adjacency::from_dense(self.n, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_kernel_properties() {
        let coords = vec![(0.0, 0.0), (1.0, 0.0), (10.0, 0.0)];
        let adj = Adjacency::from_coordinates(&coords, Some(2.0), 0.01);
        // Self-distance 0 → weight 1.
        assert!((adj.weight(0, 0) - 1.0).abs() < 1e-6);
        // Closer pairs have higher weight.
        assert!(adj.weight(0, 1) > adj.weight(0, 2));
        // Distance 10 with sigma 2 → weight e^{-25} ≈ 0, thresholded away.
        assert_eq!(adj.weight(0, 2), 0.0);
    }

    #[test]
    fn auto_sigma_is_positive_and_produces_edges() {
        let coords: Vec<(f32, f32)> = (0..10).map(|i| (i as f32, 0.0)).collect();
        let adj = Adjacency::from_coordinates(&coords, None, 0.1);
        assert!(adj.num_edges() >= 10, "at least the self-loops survive");
    }

    #[test]
    fn transpose_reverses_edges() {
        let adj = Adjacency::from_dense(2, vec![0.0, 1.0, 0.0, 0.0]);
        let t = adj.transpose();
        assert_eq!(t.weight(1, 0), 1.0);
        assert_eq!(t.weight(0, 1), 0.0);
    }

    #[test]
    fn symmetrize_averages() {
        let adj = Adjacency::from_dense(2, vec![0.0, 2.0, 0.0, 0.0]);
        let s = adj.symmetrized();
        assert_eq!(s.weight(0, 1), 1.0);
        assert_eq!(s.weight(1, 0), 1.0);
    }

    #[test]
    fn same_topology_shares_and_compares() {
        let a = Adjacency::from_dense(2, vec![1.0, 2.0, 3.0, 4.0]);
        let clone = a.clone(); // shared Arc — pointer-equality fast path
        assert!(a.same_topology(&clone));
        let rebuilt = Adjacency::from_dense(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(
            a.same_topology(&rebuilt),
            "equal contents, distinct buffers"
        );
        let other = Adjacency::from_dense(2, vec![1.0, 2.0, 3.0, 5.0]);
        assert!(!a.same_topology(&other));
        let smaller = Adjacency::from_dense(1, vec![1.0]);
        assert!(!a.same_topology(&smaller));
    }

    #[test]
    fn degrees_sum_rows() {
        let adj = Adjacency::from_dense(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(adj.out_degrees(), vec![3.0, 7.0]);
    }
}
