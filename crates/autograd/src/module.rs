//! Trainable parameters and the module abstraction.
//!
//! A [`Param`] owns its tensor and accumulated gradient behind a shared
//! handle, so a model can bind it to fresh tapes every step (as PyTorch
//! re-binds leaf tensors to new graphs) while the optimizer mutates the same
//! storage. Handles are `Rc`-based: each distributed worker owns an
//! independent model replica on its own thread.

use crate::tape::{Tape, Var};
use st_tensor::Tensor;
use std::cell::RefCell;
use std::rc::Rc;

struct ParamInner {
    name: String,
    value: Tensor,
    grad: Option<Tensor>,
}

/// A named trainable tensor with an accumulated gradient.
#[derive(Clone)]
pub struct Param {
    inner: Rc<RefCell<ParamInner>>,
}

impl Param {
    /// Create a parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Param {
            inner: Rc::new(RefCell::new(ParamInner {
                name: name.into(),
                value,
                grad: None,
            })),
        }
    }

    /// Parameter name (unique within a module tree by convention).
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Copy of the current value.
    pub fn value(&self) -> Tensor {
        self.inner.borrow().value.clone()
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.inner.borrow().value.numel()
    }

    /// Bind this parameter to `tape` as a leaf and return its [`Var`].
    /// Call [`Param::accumulate_from`] after backward to collect gradients,
    /// or prefer [`Tape::param`] + [`Tape::accumulate_param_grads`], which
    /// handle the bookkeeping automatically.
    pub fn leaf(&self, tape: &Tape) -> Var {
        tape.leaf(self.value())
    }

    /// Stable identity key (pointer of the shared inner cell).
    pub(crate) fn key(&self) -> usize {
        Rc::as_ptr(&self.inner) as usize
    }

    /// Whether `other` is a handle to the same underlying parameter
    /// (identity, not value equality). Gradient bucketing uses this to
    /// match a bucket's members against a tape's completion sequence.
    pub fn same_param(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Accumulate a raw gradient tensor into `.grad`.
    pub(crate) fn accumulate_raw(&self, g: &Tensor) {
        let mut inner = self.inner.borrow_mut();
        match &mut inner.grad {
            None => inner.grad = Some(g.clone()),
            Some(acc) => acc.add_scaled_(g, 1.0).expect("gradient shape stable"),
        }
    }

    /// Accumulate the gradient computed for `var` (the leaf returned by
    /// [`Param::leaf`] this step) into this parameter's `.grad`.
    pub fn accumulate_from(&self, grads: &crate::tape::Gradients, var: &Var) {
        let g = grads.get_or_zeros(var);
        let mut inner = self.inner.borrow_mut();
        match &mut inner.grad {
            None => inner.grad = Some(g),
            Some(acc) => {
                acc.add_scaled_(&g, 1.0).expect("gradient shape stable");
            }
        }
    }

    /// Current gradient (if any backward has run since the last zero).
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.borrow().grad.clone()
    }

    /// Replace the gradient wholesale (used by DDP after all-reduce).
    pub fn set_grad(&self, g: Option<Tensor>) {
        self.inner.borrow_mut().grad = g;
    }

    /// Clear the gradient.
    pub fn zero_grad(&self) {
        self.inner.borrow_mut().grad = None;
    }

    /// Overwrite the value (used by optimizers and parameter broadcast).
    pub fn set_value(&self, v: Tensor) {
        self.inner.borrow_mut().value = v;
    }

    /// Apply `f(value, grad)` → new value if a gradient exists.
    pub fn update_with(&self, f: impl FnOnce(&Tensor, &Tensor) -> Tensor) {
        let mut inner = self.inner.borrow_mut();
        if let Some(g) = inner.grad.clone() {
            let nv = f(&inner.value, &g);
            inner.value = nv;
        }
    }
}

/// A model component owning parameters.
pub trait Module {
    /// All trainable parameters, in a stable order (critical: DDP flattens
    /// gradients in this order on every replica, so it must be deterministic).
    fn params(&self) -> Vec<Param>;

    /// Total trainable scalars.
    fn num_params(&self) -> usize {
        self.params().iter().map(Param::numel).sum()
    }

    /// Serialize parameter values in `params()` order (a minimal state dict).
    fn state_vector(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for p in self.params() {
            out.extend_from_slice(&p.value().to_vec());
        }
        out
    }

    /// Load values produced by [`Module::state_vector`].
    fn load_state_vector(&self, state: &[f32]) {
        let mut cursor = 0usize;
        for p in self.params() {
            let n = p.numel();
            let shape = p.value().shape().clone();
            let v = Tensor::from_vec(state[cursor..cursor + n].to_vec(), shape)
                .expect("state slice matches param shape");
            p.set_value(v);
            cursor += n;
        }
        assert_eq!(cursor, state.len(), "state vector length mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn param_binds_and_accumulates() {
        let p = Param::new("w", Tensor::from_slice(&[1.0, 2.0]));
        let tape = Tape::new();
        let w = p.leaf(&tape);
        let loss = ops::sum_all(&ops::square(&w));
        let grads = tape.backward(&loss);
        p.accumulate_from(&grads, &w);
        assert_eq!(p.grad().unwrap().to_vec(), vec![2.0, 4.0]);

        // Second accumulation adds.
        let tape2 = Tape::new();
        let w2 = p.leaf(&tape2);
        let loss2 = ops::sum_all(&w2);
        let g2 = tape2.backward(&loss2);
        p.accumulate_from(&g2, &w2);
        assert_eq!(p.grad().unwrap().to_vec(), vec![3.0, 5.0]);

        p.zero_grad();
        assert!(p.grad().is_none());
    }

    struct Tiny {
        a: Param,
        b: Param,
    }

    impl Module for Tiny {
        fn params(&self) -> Vec<Param> {
            vec![self.a.clone(), self.b.clone()]
        }
    }

    #[test]
    fn state_vector_roundtrip() {
        let m = Tiny {
            a: Param::new("a", Tensor::from_slice(&[1.0, 2.0])),
            b: Param::new("b", Tensor::from_slice(&[3.0])),
        };
        assert_eq!(m.num_params(), 3);
        let sv = m.state_vector();
        assert_eq!(sv, vec![1.0, 2.0, 3.0]);
        m.a.set_value(Tensor::from_slice(&[9.0, 9.0]));
        m.load_state_vector(&sv);
        assert_eq!(m.a.value().to_vec(), vec![1.0, 2.0]);
    }
}
