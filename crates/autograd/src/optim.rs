//! Optimizers: SGD (with momentum) and Adam, plus large-batch helpers.
//!
//! The paper's §5.3.3 follow-up attributes most of the MAE inflation at high
//! GPU counts to the growing *global batch size* and shows learning-rate
//! scaling mitigates it; [`lr_for_global_batch`] implements the standard
//! linear scaling rule (Goyal et al.) used for that experiment.

use crate::module::Param;
use st_tensor::Tensor;

/// Interface shared by all optimizers.
pub trait Optimizer {
    /// Apply one update using the parameters' accumulated gradients.
    fn step(&mut self);
    /// Clear all gradients.
    fn zero_grad(&self);
    /// Current learning rate.
    fn lr(&self) -> f32;
    /// Override the learning rate (for schedules / scaling rules).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
pub struct Sgd {
    params: Vec<Param>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Create an SGD optimizer over `params`.
    pub fn new(params: Vec<Param>, lr: f32, momentum: f32) -> Self {
        let n = params.len();
        Sgd {
            params,
            lr,
            momentum,
            velocity: vec![None; n],
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            let Some(g) = p.grad() else { continue };
            let update = if self.momentum > 0.0 {
                let mut vel = v.take().unwrap_or_else(|| Tensor::zeros(g.shape().clone()));
                vel.scale_(self.momentum);
                vel.add_scaled_(&g, 1.0).expect("shapes stable");
                *v = Some(vel.clone());
                vel
            } else {
                g
            };
            p.update_with(|value, _| {
                let mut nv = value.clone();
                nv.add_scaled_(&update, -self.lr).expect("shapes stable");
                nv
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) — the paper's default optimizer.
pub struct Adam {
    params: Vec<Param>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with PyTorch-default hyperparameters.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        Self::with_config(params, lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully-configured Adam.
    pub fn with_config(
        params: Vec<Param>,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        let n = params.len();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: vec![None; n],
            v: vec![None; n],
        }
    }
}

impl Adam {
    /// Export `(t, m, v)` for checkpointing (see `checkpoint`).
    pub fn export_state(&self) -> (u64, Vec<Option<Tensor>>, Vec<Option<Tensor>>) {
        (self.t, self.m.clone(), self.v.clone())
    }

    /// Restore `(t, m, v)` from a checkpoint. Lengths must match the
    /// parameter list this optimizer was built over.
    pub fn import_state(&mut self, t: u64, m: Vec<Option<Tensor>>, v: Vec<Option<Tensor>>) {
        assert_eq!(m.len(), self.params.len(), "moment count mismatch");
        assert_eq!(v.len(), self.params.len(), "moment count mismatch");
        self.t = t;
        self.m = m;
        self.v = v;
    }

    /// Number of parameters this optimizer tracks.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..self.params.len() {
            let p = &self.params[i];
            let Some(mut g) = p.grad() else { continue };
            if self.weight_decay > 0.0 {
                g.add_scaled_(&p.value(), self.weight_decay)
                    .expect("shapes stable");
            }
            let mut m = self.m[i]
                .take()
                .unwrap_or_else(|| Tensor::zeros(g.shape().clone()));
            let mut v = self.v[i]
                .take()
                .unwrap_or_else(|| Tensor::zeros(g.shape().clone()));
            m.scale_(self.beta1);
            m.add_scaled_(&g, 1.0 - self.beta1).expect("shapes stable");
            let g2 = st_tensor::ops::square(&g);
            v.scale_(self.beta2);
            v.add_scaled_(&g2, 1.0 - self.beta2).expect("shapes stable");

            let mhat = st_tensor::ops::mul_scalar(&m, 1.0 / bc1);
            let vhat = st_tensor::ops::mul_scalar(&v, 1.0 / bc2);
            let denom = st_tensor::ops::add_scalar(&st_tensor::ops::sqrt(&vhat), self.eps);
            let update = st_tensor::ops::div(&mhat, &denom).expect("same shape");
            p.update_with(|value, _| {
                let mut nv = value.clone();
                nv.add_scaled_(&update, -self.lr).expect("shapes stable");
                nv
            });
            self.m[i] = Some(m);
            self.v[i] = Some(v);
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Clip gradients by global L2 norm; returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if let Some(g) = p.grad() {
            total += g.to_vec().iter().map(|x| x * x).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(mut g) = p.grad() {
                g.scale_(scale);
                p.set_grad(Some(g));
            }
        }
    }
    norm
}

/// Linear learning-rate scaling rule for large global batches
/// (`lr = base_lr * global_batch / base_batch`), as used in the paper's
/// §5.3.3 follow-up experiment.
pub fn lr_for_global_batch(base_lr: f32, base_batch: usize, global_batch: usize) -> f32 {
    base_lr * (global_batch as f32 / base_batch as f32)
}

/// Square-root scaling variant (more conservative; used as ablation).
pub fn lr_sqrt_scaling(base_lr: f32, base_batch: usize, global_batch: usize) -> f32 {
    base_lr * (global_batch as f32 / base_batch as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::tape::Tape;

    /// Minimize (w - 3)^2 and check convergence.
    fn run_steps(opt: &mut dyn Optimizer, p: &Param, steps: usize) -> f32 {
        for _ in 0..steps {
            opt.zero_grad();
            let tape = Tape::new();
            let w = p.leaf(&tape);
            let target = tape.leaf(Tensor::scalar(3.0));
            let diff = ops::sub(&w, &target);
            let loss = ops::sum_all(&ops::square(&diff));
            let grads = tape.backward(&loss);
            p.accumulate_from(&grads, &w);
            opt.step();
        }
        p.value().item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Param::new("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
        let w = run_steps(&mut opt, &p, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let p = Param::new("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(vec![p.clone()], 0.05, 0.9);
        let w = run_steps(&mut opt, &p, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Param::new("w", Tensor::scalar(0.0));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        let w = run_steps(&mut opt, &p, 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn clip_reduces_norm() {
        let p = Param::new("w", Tensor::from_slice(&[0.0, 0.0]));
        p.set_grad(Some(Tensor::from_slice(&[3.0, 4.0]))); // norm 5
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let g = p.grad().unwrap().to_vec();
        let post = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn lr_scaling_rules() {
        assert_eq!(lr_for_global_batch(0.01, 64, 512), 0.08);
        let sqrt = lr_sqrt_scaling(0.01, 64, 256);
        assert!((sqrt - 0.02).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_clears_all() {
        let p = Param::new("w", Tensor::scalar(1.0));
        p.set_grad(Some(Tensor::scalar(2.0)));
        let opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
        opt.zero_grad();
        assert!(p.grad().is_none());
    }
}
