//! # st-autograd
//!
//! Reverse-mode automatic differentiation over [`st_tensor::Tensor`],
//! standing in for PyTorch autograd in the PGT-I reproduction.
//!
//! The design is a classic tape: every differentiable op appends a node with
//! its parents and a backward closure; [`Tape::backward`] walks nodes in
//! reverse creation order, accumulating gradients. Tapes are per-thread
//! (`Rc`-based) — each distributed worker builds its own tape per step, which
//! mirrors DDP's per-replica autograd graphs.
//!
//! Crates above this one (`st-models`) add domain ops — e.g. sparse diffusion
//! convolution — through [`Tape::custom_op`] without touching this crate.

pub mod checkpoint;
pub mod loss;
pub mod module;
pub mod ops;
pub mod optim;
pub mod schedule;
pub mod tape;

pub use checkpoint::{Checkpoint, StateDict};
pub use module::{Module, Param};
pub use tape::{Gradients, Tape, Var};

pub use st_tensor::{Shape, Tensor};
