//! The autograd tape: graph recording and reverse-mode traversal.

use st_tensor::{Shape, Tensor};
use std::cell::RefCell;
use std::rc::Rc;

/// Backward closure: given the gradient flowing into this node, produce one
/// gradient tensor per parent (aligned with the node's parent list).
type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
    shape: Shape,
}

struct TapeInner {
    nodes: Vec<Node>,
    /// Parameters bound to this tape: (param, leaf node id). Binding the
    /// same parameter twice returns the same leaf, so recurrent cells that
    /// reuse weights at every time step accumulate one combined gradient.
    params: Vec<(crate::module::Param, usize)>,
    /// When false ([`Tape::inference`]), nothing is recorded: backward
    /// closures are dropped on arrival and no node (hence no retained
    /// activation) is created. Forward values are identical either way.
    grad_enabled: bool,
    /// The compute backend active when this tape was created (see
    /// [`Tape::backend`]).
    backend: st_tensor::backend::BackendKind,
}

impl Default for TapeInner {
    fn default() -> Self {
        TapeInner {
            nodes: Vec::new(),
            params: Vec::new(),
            grad_enabled: true,
            backend: st_tensor::backend::active_backend(),
        }
    }
}

/// A per-thread autograd tape. Clones share the same recording.
#[derive(Clone, Default)]
pub struct Tape {
    inner: Rc<RefCell<TapeInner>>,
}

/// A value recorded on a tape: a tensor plus its node id.
#[derive(Clone)]
pub struct Var {
    pub(crate) id: usize,
    value: Tensor,
    tape: Tape,
}

impl Tape {
    /// Fresh, empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// A **non-recording** tape for forward-only (inference) passes: every
    /// op computes its forward value exactly as usual, but no graph node is
    /// created and no backward closure (or the activations it captures) is
    /// retained — [`Tape::activation_bytes`] stays 0 no matter how deep the
    /// model. Calling [`Tape::backward`] on an inference tape panics.
    pub fn inference() -> Self {
        let tape = Tape::default();
        tape.inner.borrow_mut().grad_enabled = false;
        tape
    }

    /// False when this tape was created with [`Tape::inference`].
    pub fn grad_enabled(&self) -> bool {
        self.inner.borrow().grad_enabled
    }

    /// The [`st_tensor::backend::BackendKind`] that was process-active when
    /// this tape was created. Kernel dispatch itself is process-wide
    /// ([`st_tensor::backend::set_backend`]); the tape snapshots the choice
    /// so trainers, the serve shards, and benches can assert every graph in
    /// a run was recorded under the kernels they configured.
    pub fn backend(&self) -> st_tensor::backend::BackendKind {
        self.inner.borrow().backend
    }

    /// Number of recorded nodes (useful for tests and leak checks).
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of forward activations retained by this tape (every
    /// recorded node keeps its value alive for the backward pass), at
    /// `elem_bytes` per scalar. This is what "GPU memory during training"
    /// means for the autograd graph — the quantity behind Table 2's GPU
    /// column: DCRNN's encoder–decoder retains ~2·T·layers step graphs,
    /// PGT-DCRNN a single stepwise layer.
    pub fn activation_bytes(&self, elem_bytes: usize) -> u64 {
        let inner = self.inner.borrow();
        inner
            .nodes
            .iter()
            .map(|n| (n.shape.numel() * elem_bytes) as u64)
            .sum()
    }

    /// Record a leaf (no gradient flows past it unless it's a parameter
    /// leaf created through [`crate::Param::leaf`]).
    pub fn leaf(&self, value: Tensor) -> Var {
        self.record(value, Vec::new(), None)
    }

    /// Record a constant — alias of [`Tape::leaf`], reads better at call
    /// sites for non-trainable inputs.
    pub fn constant(&self, value: Tensor) -> Var {
        self.leaf(value)
    }

    /// Bind a trainable parameter to this tape, returning its leaf [`Var`].
    /// Idempotent per parameter: repeated binds return the same leaf.
    /// After [`Tape::backward`], call [`Tape::accumulate_param_grads`] to
    /// push gradients into every bound parameter.
    pub fn param(&self, p: &crate::module::Param) -> Var {
        if !self.inner.borrow().grad_enabled {
            // No gradients will flow: the parameter is just a constant.
            return self.leaf(p.value());
        }
        let key = p.key();
        {
            let inner = self.inner.borrow();
            if let Some((_, id)) = inner.params.iter().find(|(q, _)| q.key() == key) {
                let id = *id;
                let shape = inner.nodes[id].shape.clone();
                drop(inner);
                // Rebuild the Var handle for the existing leaf. The value
                // snapshot is the parameter's current value (unchanged
                // within a step).
                let _ = shape;
                return Var {
                    id,
                    value: p.value(),
                    tape: self.clone(),
                };
            }
        }
        let var = self.leaf(p.value());
        self.inner.borrow_mut().params.push((p.clone(), var.id));
        var
    }

    /// Push gradients from `grads` into every parameter bound via
    /// [`Tape::param`].
    pub fn accumulate_param_grads(&self, grads: &Gradients) {
        let inner = self.inner.borrow();
        for (p, id) in &inner.params {
            if let Some(g) = grads.get_by_id(*id) {
                p.accumulate_raw(g);
            }
        }
    }

    pub(crate) fn record(
        &self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
    ) -> Var {
        let mut inner = self.inner.borrow_mut();
        if !inner.grad_enabled {
            // Inference mode: drop the closure, retain nothing. Node ids
            // are meaningless here (backward is forbidden), so 0 is fine.
            return Var {
                id: 0,
                value,
                tape: self.clone(),
            };
        }
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            parents,
            backward,
            shape: value.shape().clone(),
        });
        Var {
            id,
            value,
            tape: self.clone(),
        }
    }

    /// Extension point for domain-specific differentiable ops (e.g. the
    /// sparse diffusion convolution in `st-models`): provide the forward
    /// `value`, the parent vars, and a closure mapping the output gradient
    /// to per-parent gradients.
    pub fn custom_op(
        &self,
        parents: &[&Var],
        value: Tensor,
        backward: impl Fn(&Tensor) -> Vec<Tensor> + 'static,
    ) -> Var {
        for p in parents {
            assert!(
                Rc::ptr_eq(&p.tape.inner, &self.inner),
                "custom_op: all parents must live on the same tape"
            );
        }
        let ids = parents.iter().map(|p| p.id).collect();
        self.record(value, ids, Some(Box::new(backward)))
    }

    /// Parameters bound to this tape in **gradient-completion order**: the
    /// order their gradients finalize during [`Tape::backward`]. The
    /// reverse scan visits node ids descending, and a node's gradient is
    /// complete once every consumer (a higher id) has been processed — so
    /// parameter leaves complete in descending bind order. This is the
    /// sequence DDP-style bucketing wants: buckets of late-bound (deep)
    /// parameters fire early in the backward pass, overlapping their
    /// collective with the gradient computation still running for the
    /// early-bound (shallow) ones.
    pub fn param_completion_order(&self) -> Vec<crate::module::Param> {
        let inner = self.inner.borrow();
        let mut by_id: Vec<(usize, crate::module::Param)> = inner
            .params
            .iter()
            .map(|(p, id)| (*id, p.clone()))
            .collect();
        by_id.sort_by_key(|&(id, _)| std::cmp::Reverse(id));
        by_id.into_iter().map(|(_, p)| p).collect()
    }

    /// Run reverse-mode differentiation from `root` (a scalar, typically a
    /// loss). Returns per-node gradients.
    ///
    /// Gradients finalize in descending node-id order (the reverse scan
    /// below); [`Tape::param_completion_order`] exposes that sequence for
    /// the bound parameters so gradient buckets can fire as soon as their
    /// last member completes rather than after the whole backward.
    pub fn backward(&self, root: &Var) -> Gradients {
        assert!(
            Rc::ptr_eq(&root.tape.inner, &self.inner),
            "backward: root recorded on another tape"
        );
        assert!(
            self.inner.borrow().grad_enabled,
            "backward: inference tapes record no graph"
        );
        let inner = self.inner.borrow();
        let mut grads: Vec<Option<Tensor>> = vec![None; inner.nodes.len()];
        grads[root.id] = Some(Tensor::ones(root.value.shape().clone()));
        // Nodes are created in topological order, so a reverse scan visits
        // every consumer before its producers.
        for id in (0..=root.id).rev() {
            let Some(g) = grads[id].take() else { continue };
            let node = &inner.nodes[id];
            if let Some(backward) = &node.backward {
                let parent_grads = backward(&g);
                debug_assert_eq!(parent_grads.len(), node.parents.len());
                for (pid, pg) in node.parents.iter().zip(parent_grads) {
                    accumulate(&mut grads[*pid], pg);
                }
            }
            grads[id] = Some(g);
        }
        Gradients { grads }
    }
}

fn accumulate(slot: &mut Option<Tensor>, g: Tensor) {
    match slot {
        None => *slot = Some(g),
        Some(acc) => {
            // In-place accumulate: reuses the slot's buffer when uniquely
            // owned instead of allocating a fresh sum per contribution.
            // `add_assign` walks elements in the same order with the same
            // `x + y` expression as the allocating `add`, so gradient bits
            // are unchanged.
            st_tensor::ops::add_assign(acc, &g).expect("gradient shapes must match");
        }
    }
}

/// Gradients produced by [`Tape::backward`], indexed by node id.
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the root w.r.t. `var`, if any gradient flowed to it.
    pub fn get(&self, var: &Var) -> Option<&Tensor> {
        self.grads.get(var.id).and_then(|g| g.as_ref())
    }

    /// Gradient for a raw node id (used by the tape's parameter registry).
    pub(crate) fn get_by_id(&self, id: usize) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    /// Gradient for `var`, or a zero tensor of its shape.
    pub fn get_or_zeros(&self, var: &Var) -> Tensor {
        self.get(var)
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(var.value.shape().clone()))
    }
}

impl Var {
    /// The forward value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// The tape this var is recorded on.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Node id (stable within one tape).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Dimension sizes of the forward value.
    pub fn dims(&self) -> &[usize] {
        self.value.dims()
    }

    pub(crate) fn same_tape(&self, other: &Var) -> bool {
        Rc::ptr_eq(&self.tape.inner, &other.tape.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn leaf_has_no_backward() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_slice(&[1.0, 2.0]));
        let g = tape.backward(&x);
        // Root gradient is ones.
        assert_eq!(g.get(&x).unwrap().to_vec(), vec![1.0, 1.0]);
    }

    #[test]
    fn chain_rule_through_two_ops() {
        // y = (2x)^2 summed; dy/dx = 8x
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_slice(&[1.0, 3.0]));
        let two_x = ops::mul_scalar(&x, 2.0);
        let sq = ops::square(&two_x);
        let y = ops::sum_all(&sq);
        let g = tape.backward(&y);
        assert_eq!(g.get(&x).unwrap().to_vec(), vec![8.0, 24.0]);
    }

    #[test]
    fn gradients_accumulate_over_multiple_uses() {
        // y = sum(x * x_used_twice): use x in two branches, grads must add.
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_slice(&[2.0]));
        let a = ops::mul_scalar(&x, 3.0);
        let b = ops::mul_scalar(&x, 4.0);
        let y = ops::sum_all(&ops::add(&a, &b));
        let g = tape.backward(&y);
        assert_eq!(g.get(&x).unwrap().to_vec(), vec![7.0]);
    }

    #[test]
    fn custom_op_backward_is_called() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_slice(&[5.0]));
        // Forward: x * 10, backward: grad * 10.
        let y = tape.custom_op(&[&x], st_tensor::ops::mul_scalar(x.value(), 10.0), |g| {
            vec![st_tensor::ops::mul_scalar(g, 10.0)]
        });
        let s = ops::sum_all(&y);
        let g = tape.backward(&s);
        assert_eq!(g.get(&x).unwrap().to_vec(), vec![10.0]);
    }

    #[test]
    fn inference_tape_computes_identical_values_without_recording() {
        let run = |tape: &Tape| {
            let x = tape.leaf(Tensor::from_slice(&[1.0, 3.0]));
            ops::sum_all(&ops::square(&ops::mul_scalar(&x, 2.0)))
                .value()
                .item()
        };
        let train = Tape::new();
        let infer = Tape::inference();
        assert_eq!(run(&train).to_bits(), run(&infer).to_bits());
        assert!(train.activation_bytes(4) > 0);
        assert_eq!(infer.activation_bytes(4), 0, "inference retains nothing");
        assert!(infer.is_empty());
        assert!(!infer.grad_enabled());
    }

    #[test]
    fn inference_tape_treats_params_as_constants() {
        let p = crate::module::Param::new("w", Tensor::from_slice(&[2.0]));
        let tape = Tape::inference();
        let w = tape.param(&p);
        assert_eq!(w.value().to_vec(), vec![2.0]);
        assert!(tape.is_empty(), "param binding must not record");
    }

    #[test]
    #[should_panic(expected = "inference tapes record no graph")]
    fn backward_on_inference_tape_is_loud() {
        let tape = Tape::inference();
        let x = tape.leaf(Tensor::from_slice(&[1.0]));
        let y = ops::mul_scalar(&x, 2.0);
        tape.backward(&y);
    }

    #[test]
    fn params_complete_in_reverse_bind_order() {
        let a = crate::module::Param::new("a", Tensor::from_slice(&[1.0]));
        let b = crate::module::Param::new("b", Tensor::from_slice(&[2.0]));
        let tape = Tape::new();
        let va = tape.param(&a);
        let vb = tape.param(&b);
        let y = ops::sum_all(&ops::add(&va, &vb));
        let _ = tape.backward(&y);
        let order = tape.param_completion_order();
        assert_eq!(order.len(), 2);
        // b bound last ⇒ its grad finalizes first in the reverse scan.
        assert_eq!(order[0].name(), "b");
        assert_eq!(order[1].name(), "a");
        // Re-binding is idempotent: the order is stable.
        let _ = tape.param(&a);
        assert_eq!(tape.param_completion_order().len(), 2);
    }

    #[test]
    fn no_grad_for_unreachable_nodes() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_slice(&[1.0]));
        let unused = tape.leaf(Tensor::from_slice(&[1.0]));
        let y = ops::sum_all(&ops::mul_scalar(&x, 2.0));
        let g = tape.backward(&y);
        assert!(g.get(&unused).is_none());
        assert_eq!(g.get_or_zeros(&unused).to_vec(), vec![0.0]);
    }
}
