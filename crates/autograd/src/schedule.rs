//! Learning-rate schedules.
//!
//! DCRNN's reference implementation anneals its learning rate with a
//! multi-step decay, and the paper's §5.3.3 follow-up shows that *scaling*
//! the rate with the global batch (plus a warmup, per Goyal et al.) recovers
//! most of the accuracy lost to large global batches. Schedules here are
//! pure `epoch → lr` functions applied on top of any [`Optimizer`]
//! (`optim::lr_for_global_batch` supplies the scaled base rate).

use crate::optim::Optimizer;

/// An epoch-indexed learning-rate schedule.
pub trait LrSchedule {
    /// The learning rate to use for `epoch` (0-based).
    fn lr_at(&self, epoch: usize) -> f32;

    /// Convenience: set `opt`'s rate for `epoch`.
    fn apply(&self, opt: &mut dyn Optimizer, epoch: usize) {
        opt.set_lr(self.lr_at(epoch));
    }
}

/// Constant rate (the identity schedule).
#[derive(Debug, Clone, Copy)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// Multiply by `gamma` every `step_size` epochs.
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    /// Initial rate.
    pub base_lr: f32,
    /// Epochs between decays.
    pub step_size: usize,
    /// Decay factor.
    pub gamma: f32,
}

impl LrSchedule for StepLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_size.max(1)) as i32)
    }
}

/// Multiply by `gamma` at each listed milestone epoch — the schedule the
/// DCRNN reference uses (milestones `[20, 30, 40, 50]`, γ = 0.1).
#[derive(Debug, Clone)]
pub struct MultiStepLr {
    /// Initial rate.
    pub base_lr: f32,
    /// Epochs at which the rate decays (ascending).
    pub milestones: Vec<usize>,
    /// Decay factor.
    pub gamma: f32,
}

impl MultiStepLr {
    /// The DCRNN reference schedule on top of `base_lr`.
    pub fn dcrnn(base_lr: f32) -> Self {
        MultiStepLr {
            base_lr,
            milestones: vec![20, 30, 40, 50],
            gamma: 0.1,
        }
    }
}

impl LrSchedule for MultiStepLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        let decays = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base_lr * self.gamma.powi(decays as i32)
    }
}

/// Cosine annealing from `base_lr` down to `min_lr` over `total_epochs`.
#[derive(Debug, Clone, Copy)]
pub struct CosineLr {
    /// Initial rate.
    pub base_lr: f32,
    /// Final rate.
    pub min_lr: f32,
    /// Annealing length.
    pub total_epochs: usize,
}

impl LrSchedule for CosineLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total_epochs)) as f32 / self.total_epochs.max(1) as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cos
    }
}

/// Linear warmup for `warmup_epochs` epochs, then defer to `inner` (indexed
/// from the end of warmup) — the Goyal et al. recipe for large global
/// batches that §5.3.3 alludes to.
pub struct WarmupLr<S: LrSchedule> {
    /// Epochs of linear ramp from `start_frac × lr_at(0)` to `lr_at(0)`.
    pub warmup_epochs: usize,
    /// Ramp starting fraction (Goyal et al. use ≈ 1/world).
    pub start_frac: f32,
    /// Schedule after warmup.
    pub inner: S,
}

impl<S: LrSchedule> LrSchedule for WarmupLr<S> {
    fn lr_at(&self, epoch: usize) -> f32 {
        let target = self.inner.lr_at(0);
        if epoch < self.warmup_epochs {
            let t = (epoch + 1) as f32 / self.warmup_epochs as f32;
            target * (self.start_frac + (1.0 - self.start_frac) * t)
        } else {
            self.inner.lr_at(epoch - self.warmup_epochs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Param;
    use crate::optim::Sgd;
    use st_tensor::Tensor;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(0.01);
        assert_eq!(s.lr_at(0), 0.01);
        assert_eq!(s.lr_at(1000), 0.01);
    }

    #[test]
    fn step_decays_geometrically() {
        let s = StepLr {
            base_lr: 1.0,
            step_size: 10,
            gamma: 0.5,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
    }

    #[test]
    fn multistep_matches_dcrnn_reference() {
        let s = MultiStepLr::dcrnn(0.01);
        assert!((s.lr_at(19) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(20) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(35) - 1e-4).abs() < 1e-10);
        assert!((s.lr_at(55) - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn cosine_hits_endpoints() {
        let s = CosineLr {
            base_lr: 0.1,
            min_lr: 0.001,
            total_epochs: 30,
        };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(30) - 0.001).abs() < 1e-6);
        assert!((s.lr_at(100) - 0.001).abs() < 1e-6, "clamped past the end");
        // Monotone decreasing.
        for e in 0..30 {
            assert!(s.lr_at(e + 1) <= s.lr_at(e) + 1e-9);
        }
    }

    #[test]
    fn warmup_ramps_then_defers() {
        let s = WarmupLr {
            warmup_epochs: 5,
            start_frac: 0.1,
            inner: ConstantLr(0.08), // e.g. 8× linear-scaled for 8 workers
        };
        assert!(s.lr_at(0) < 0.08 * 0.35);
        for e in 0..4 {
            assert!(s.lr_at(e + 1) > s.lr_at(e), "ramp must increase");
        }
        assert!((s.lr_at(5) - 0.08).abs() < 1e-7);
        assert!((s.lr_at(40) - 0.08).abs() < 1e-7);
    }

    #[test]
    fn apply_sets_optimizer_rate() {
        let p = Param::new("w", Tensor::zeros([2]));
        let mut opt = Sgd::new(vec![p], 1.0, 0.0);
        let s = StepLr {
            base_lr: 1.0,
            step_size: 1,
            gamma: 0.1,
        };
        s.apply(&mut opt, 2);
        assert!((crate::optim::Optimizer::lr(&opt) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn warmup_composes_with_multistep() {
        let s = WarmupLr {
            warmup_epochs: 3,
            start_frac: 0.25,
            inner: MultiStepLr {
                base_lr: 0.04,
                milestones: vec![10],
                gamma: 0.5,
            },
        };
        // After warmup, milestone indexing restarts at warmup end.
        assert!((s.lr_at(3) - 0.04).abs() < 1e-7);
        assert!((s.lr_at(12) - 0.04).abs() < 1e-7); // inner epoch 9 < 10
        assert!((s.lr_at(13) - 0.02).abs() < 1e-7); // inner epoch 10
    }
}
