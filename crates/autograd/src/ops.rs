//! Differentiable tensor operations on [`Var`].
//!
//! Each op computes its forward value with `st_tensor::ops` and records a
//! backward closure. Binary ops support NumPy broadcasting; their backward
//! passes reduce gradients back to each input's shape.

use crate::tape::Var;
use st_tensor::ops as t;
use st_tensor::{Shape, Tensor};

pub use st_tensor::backend::Activation;

/// Sum `grad` down to `shape` (undo broadcasting): collapse leading extra
/// dims, then sum dims where the target size is 1.
pub fn reduce_grad_to(grad: &Tensor, shape: &Shape) -> Tensor {
    let mut g = grad.clone();
    while g.rank() > shape.rank() {
        g = t::sum_axis(&g, 0).expect("rank > 0");
    }
    for d in 0..shape.rank() {
        if shape.dim(d) == 1 && g.dim(d) != 1 {
            g = t::sum_axis(&g, d)
                .expect("axis in range")
                .unsqueeze(d)
                .expect("unsqueeze");
        }
    }
    g
}

fn binary(
    a: &Var,
    b: &Var,
    value: Tensor,
    da: impl Fn(&Tensor) -> Tensor + 'static,
    db: impl Fn(&Tensor) -> Tensor + 'static,
) -> Var {
    assert!(a.same_tape(b), "binary op across different tapes");
    let (sa, sb) = (a.value().shape().clone(), b.value().shape().clone());
    a.tape().custom_op(&[a, b], value, move |g| {
        vec![reduce_grad_to(&da(g), &sa), reduce_grad_to(&db(g), &sb)]
    })
}

/// `a + b` (broadcasting).
pub fn add(a: &Var, b: &Var) -> Var {
    let v = t::add(a.value(), b.value()).expect("add shapes broadcast");
    binary(a, b, v, Tensor::clone, Tensor::clone)
}

/// `a - b` (broadcasting).
pub fn sub(a: &Var, b: &Var) -> Var {
    let v = t::sub(a.value(), b.value()).expect("sub shapes broadcast");
    binary(a, b, v, Tensor::clone, t::neg)
}

/// `a * b` (broadcasting).
pub fn mul(a: &Var, b: &Var) -> Var {
    let v = t::mul(a.value(), b.value()).expect("mul shapes broadcast");
    let (av, bv) = (a.value().clone(), b.value().clone());
    binary(
        a,
        b,
        v,
        move |g| t::mul(g, &bv).expect("grad mul"),
        move |g| t::mul(g, &av).expect("grad mul"),
    )
}

/// `a / b` (broadcasting).
pub fn div(a: &Var, b: &Var) -> Var {
    let v = t::div(a.value(), b.value()).expect("div shapes broadcast");
    let (av, bv) = (a.value().clone(), b.value().clone());
    let bv2 = bv.clone();
    binary(
        a,
        b,
        v,
        move |g| t::div(g, &bv).expect("grad div"),
        move |g| {
            // d(a/b)/db = -a / b^2
            let num = t::mul(g, &av).expect("grad div");
            t::neg(&t::div(&num, &t::square(&bv2)).expect("grad div"))
        },
    )
}

/// `v + s` for scalar `s`.
pub fn add_scalar(v: &Var, s: f32) -> Var {
    v.tape()
        .custom_op(&[v], t::add_scalar(v.value(), s), |g| vec![g.clone()])
}

/// `v * s` for scalar `s`.
pub fn mul_scalar(v: &Var, s: f32) -> Var {
    v.tape()
        .custom_op(&[v], t::mul_scalar(v.value(), s), move |g| {
            vec![t::mul_scalar(g, s)]
        })
}

/// `-v`.
pub fn neg(v: &Var) -> Var {
    mul_scalar(v, -1.0)
}

/// Elementwise square.
pub fn square(v: &Var) -> Var {
    let x = v.value().clone();
    v.tape().custom_op(&[v], t::square(v.value()), move |g| {
        vec![t::mul_scalar(&t::mul(g, &x).expect("same shape"), 2.0)]
    })
}

/// Elementwise square root.
pub fn sqrt(v: &Var) -> Var {
    let y = t::sqrt(v.value());
    let yc = y.clone();
    v.tape().custom_op(&[v], y, move |g| {
        // d sqrt(x) = g / (2 sqrt(x))
        vec![t::div(g, &t::mul_scalar(&yc, 2.0)).expect("same shape")]
    })
}

/// Elementwise absolute value (subgradient 0 at 0).
pub fn abs(v: &Var) -> Var {
    let x = v.value().clone();
    v.tape().custom_op(&[v], t::abs(v.value()), move |g| {
        let sign = t::map(&x, |e| {
            if e > 0.0 {
                1.0
            } else if e < 0.0 {
                -1.0
            } else {
                0.0
            }
        });
        vec![t::mul(g, &sign).expect("same shape")]
    })
}

/// Elementwise exponential.
pub fn exp(v: &Var) -> Var {
    let y = t::exp(v.value());
    let yc = y.clone();
    v.tape()
        .custom_op(&[v], y, move |g| vec![t::mul(g, &yc).expect("same shape")])
}

/// Logistic sigmoid.
pub fn sigmoid(v: &Var) -> Var {
    let y = t::sigmoid(v.value());
    let yc = y.clone();
    v.tape().custom_op(&[v], y, move |g| {
        // dy = y (1 - y)
        let one_minus = t::map(&yc, |e| 1.0 - e);
        let dy = t::mul(&yc, &one_minus).expect("same shape");
        vec![t::mul(g, &dy).expect("same shape")]
    })
}

/// Hyperbolic tangent.
pub fn tanh(v: &Var) -> Var {
    let y = t::tanh(v.value());
    let yc = y.clone();
    v.tape().custom_op(&[v], y, move |g| {
        let dy = t::map(&yc, |e| 1.0 - e * e);
        vec![t::mul(g, &dy).expect("same shape")]
    })
}

/// Rectified linear unit.
pub fn relu(v: &Var) -> Var {
    let x = v.value().clone();
    v.tape().custom_op(&[v], t::relu(v.value()), move |g| {
        let mask = t::map(&x, |e| if e > 0.0 { 1.0 } else { 0.0 });
        vec![t::mul(g, &mask).expect("same shape")]
    })
}

/// GELU with its tanh-approximation derivative.
pub fn gelu(v: &Var) -> Var {
    let x = v.value().clone();
    v.tape().custom_op(&[v], t::gelu(v.value()), move |g| {
        const C: f32 = 0.797_884_6;
        let dy = t::map(&x, |e| {
            let inner = C * (e + 0.044715 * e * e * e);
            let th = inner.tanh();
            let sech2 = 1.0 - th * th;
            0.5 * (1.0 + th) + 0.5 * e * sech2 * C * (1.0 + 3.0 * 0.044715 * e * e)
        });
        vec![t::mul(g, &dy).expect("same shape")]
    })
}

/// Fused `act(z + bias)` — the recurrent gate tail (`dconv → add-bias →
/// σ/tanh`) as one tape node instead of two, with a single output
/// allocation. `bias` is rank-1 over `z`'s last dimension.
///
/// Forward and backward replicate the composed `add` + activation pair's
/// per-element expressions and gradient compositions exactly, so loss and
/// gradient bits match the unfused graph.
pub fn bias_act(z: &Var, bias: &Var, act: Activation) -> Var {
    assert!(z.same_tape(bias), "bias_act across different tapes");
    let y = t::fused::bias_act(z.value(), bias.value(), act).expect("bias_act shapes");
    let yc = y.clone();
    let bshape = bias.value().shape().clone();
    z.tape().custom_op(&[z, bias], y, move |g| {
        let gout = match act {
            Activation::Identity => g.clone(),
            _ => t::mul(g, &t::fused::act_grad(&yc, act)).expect("same shape"),
        };
        let db = reduce_grad_to(&gout, &bshape);
        vec![gout, db]
    })
}

/// Fused GRU blend `h' = u⊙h + (1−u)⊙c` as one tape node (the historical
/// composition materialized four intermediates and five nodes).
///
/// The backward closure reproduces the composed graph's gradient sums in
/// their historical accumulation order, keeping gradient bits identical.
pub fn gru_blend(u: &Var, h: &Var, c: &Var) -> Var {
    assert!(
        u.same_tape(h) && u.same_tape(c),
        "gru_blend across different tapes"
    );
    let y = t::fused::gru_blend(u.value(), h.value(), c.value()).expect("gru_blend shapes");
    let (uv, hv, cv) = (u.value().clone(), h.value().clone(), c.value().clone());
    u.tape().custom_op(&[u, h, c], y, move |g| {
        // du: the (1−u)⊙c branch's −g⊙c lands first, then the u⊙h
        // branch's g⊙h — the reverse node order of the composed graph.
        let du = t::add(
            &t::mul_scalar(&t::mul(g, &cv).expect("same shape"), -1.0),
            &t::mul(g, &hv).expect("same shape"),
        )
        .expect("same shape");
        let dh = t::mul(g, &uv).expect("same shape");
        let dc = t::mul(g, &t::fused::one_minus(&uv)).expect("same shape");
        vec![du, dh, dc]
    })
}

/// `a @ b` for 2-D matrices.
pub fn matmul(a: &Var, b: &Var) -> Var {
    assert!(a.same_tape(b), "matmul across different tapes");
    let v = t::matmul(a.value(), b.value()).expect("matmul shapes");
    let (av, bv) = (a.value().clone(), b.value().clone());
    a.tape().custom_op(&[a, b], v, move |g| {
        let da = t::matmul(g, &bv.t().expect("rank 2")).expect("grad matmul");
        let db = t::matmul(&av.t().expect("rank 2"), g).expect("grad matmul");
        vec![da, db]
    })
}

/// Batched matmul `[B,m,k] @ [B,k,n]` or `[B,m,k] @ [k,n]` (shared rhs).
pub fn bmm(a: &Var, b: &Var) -> Var {
    assert!(a.same_tape(b), "bmm across different tapes");
    let v = t::bmm(a.value(), b.value()).expect("bmm shapes");
    let (av, bv) = (a.value().clone(), b.value().clone());
    let shared = b.value().rank() == 2;
    a.tape().custom_op(&[a, b], v, move |g| {
        // dA[b] = dC[b] @ B[b]^T ; dB[b] = A[b]^T @ dC[b]
        let bs = av.dim(0);
        let bt = if shared {
            bv.t().expect("rank 2")
        } else {
            bv.transpose(1, 2).expect("rank 3")
        };
        let da = t::bmm(g, &bt.contiguous()).expect("grad bmm");
        let at = av.transpose(1, 2).expect("rank 3").contiguous();
        let db_batched = t::bmm(&at, g).expect("grad bmm");
        let db = if shared {
            // Sum over the batch dimension to match the shared [k,n] rhs.
            let mut acc = db_batched.select(0, 0).expect("batch >= 1");
            for i in 1..bs {
                acc = t::add(&acc, &db_batched.select(0, i).expect("in range")).expect("same");
            }
            acc
        } else {
            db_batched
        };
        vec![da, db]
    })
}

/// Softmax along the last dimension.
pub fn softmax_last(v: &Var) -> Var {
    let y = t::softmax_last(v.value()).expect("softmax shape");
    let yc = y.clone();
    v.tape().custom_op(&[v], y, move |g| {
        // dx = (g - sum_last(g*y)) * y
        let gy = t::mul(g, &yc).expect("same shape");
        let last_axis = yc.rank() - 1;
        let s = t::sum_axis(&gy, last_axis)
            .expect("axis ok")
            .unsqueeze(last_axis)
            .expect("unsqueeze");
        let centered = t::sub(g, &s).expect("broadcast sub");
        vec![t::mul(&centered, &yc).expect("same shape")]
    })
}

/// Mean over all elements, producing a scalar.
pub fn mean_all(v: &Var) -> Var {
    let n = v.value().numel() as f32;
    let shape = v.value().shape().clone();
    let val = Tensor::scalar(t::mean_all(v.value()));
    v.tape().custom_op(&[v], val, move |g| {
        let gs = g.item() / n;
        vec![Tensor::full(shape.clone(), gs)]
    })
}

/// Sum over all elements, producing a scalar.
pub fn sum_all(v: &Var) -> Var {
    let shape = v.value().shape().clone();
    let val = Tensor::scalar(t::sum_all(v.value()));
    v.tape().custom_op(&[v], val, move |g| {
        vec![Tensor::full(shape.clone(), g.item())]
    })
}

/// Mean along `axis` (axis removed).
pub fn mean_axis(v: &Var, axis: usize) -> Var {
    let n = v.value().dim(axis) as f32;
    let shape = v.value().shape().clone();
    let val = t::mean_axis(v.value(), axis).expect("axis in range");
    v.tape().custom_op(&[v], val, move |g| {
        // Broadcast g back along `axis` and divide by n.
        let expanded = g.unsqueeze(axis).expect("unsqueeze");
        let b = expanded
            .broadcast_to(&shape)
            .expect("broadcast back to input");
        vec![t::mul_scalar(&b, 1.0 / n)]
    })
}

/// Zero-copy forward narrow; backward scatters into a zero tensor.
pub fn narrow(v: &Var, dim: usize, start: usize, len: usize) -> Var {
    let val = v.value().narrow(dim, start, len).expect("narrow bounds");
    let shape = v.value().shape().clone();
    v.tape().custom_op(&[v], val, move |g| {
        let mut full = Tensor::zeros(shape.clone());
        scatter_narrow(&mut full, g, dim, start);
        vec![full]
    })
}

/// Write `src` into `dst` at offset `start` along `dim` (shapes must agree
/// elsewhere). Helper for narrow/concat backward.
fn scatter_narrow(dst: &mut Tensor, src: &Tensor, dim: usize, start: usize) {
    let dims = dst.dims().to_vec();
    let outer: usize = dims[..dim].iter().product();
    let inner: usize = dims[dim + 1..].iter().product();
    let dlen = dims[dim];
    let slen = src.dim(dim);
    let sv = src.to_vec();
    let dv = dst.make_mut_contiguous();
    for o in 0..outer {
        for a in 0..slen {
            let doff = (o * dlen + start + a) * inner;
            let soff = (o * slen + a) * inner;
            for i in 0..inner {
                dv[doff + i] += sv[soff + i];
            }
        }
    }
}

/// Concatenate along `dim`; backward splits the gradient.
pub fn concat(vars: &[&Var], dim: usize) -> Var {
    assert!(!vars.is_empty(), "concat of empty list");
    let tensors: Vec<&Tensor> = vars.iter().map(|v| v.value()).collect();
    let val = t::concat(&tensors, dim).expect("concat shapes");
    let sizes: Vec<usize> = vars.iter().map(|v| v.value().dim(dim)).collect();
    vars[0].tape().custom_op(vars, val, move |g| {
        let mut out = Vec::with_capacity(sizes.len());
        let mut cursor = 0;
        for &s in &sizes {
            out.push(g.narrow(dim, cursor, s).expect("split bounds").contiguous());
            cursor += s;
        }
        out
    })
}

/// Reshape (zero-copy when contiguous); backward reshapes the gradient back.
pub fn reshape(v: &Var, shape: impl Into<Shape>) -> Var {
    let shape = shape.into();
    let orig = v.value().shape().clone();
    let val = v.value().reshape(shape).expect("reshape numel");
    v.tape().custom_op(&[v], val, move |g| {
        vec![g.reshape(orig.clone()).expect("reshape back")]
    })
}

/// Permute dimensions; backward applies the inverse permutation.
pub fn permute(v: &Var, perm: &[usize]) -> Var {
    let val = v
        .value()
        .permute(perm)
        .expect("valid permutation")
        .contiguous();
    let mut inverse = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inverse[p] = i;
    }
    v.tape().custom_op(&[v], val, move |g| {
        vec![g
            .permute(&inverse)
            .expect("inverse permutation")
            .contiguous()]
    })
}

/// Stack vars along a new leading dimension.
pub fn stack0(vars: &[&Var]) -> Var {
    let unsqueezed: Vec<Var> = vars
        .iter()
        .map(|v| {
            reshape(v, {
                let mut d = vec![1usize];
                d.extend_from_slice(v.value().dims());
                d
            })
        })
        .collect();
    let refs: Vec<&Var> = unsqueezed.iter().collect();
    concat(&refs, 0)
}

/// Row gather on dim 0 (embedding lookup); backward scatter-adds.
pub fn index_select0(v: &Var, indices: &[usize]) -> Var {
    let val = v.value().index_select0(indices).expect("indices in range");
    let idx = indices.to_vec();
    let shape = v.value().shape().clone();
    v.tape().custom_op(&[v], val, move |g| {
        let mut full = Tensor::zeros(shape.clone());
        let row = full.numel() / shape.dim(0).max(1);
        let gv = g.to_vec();
        let fv = full.make_mut_contiguous();
        for (r, &i) in idx.iter().enumerate() {
            for c in 0..row {
                fv[i * row + c] += gv[r * row + c];
            }
        }
        vec![full]
    })
}

/// Layer normalization over the last dimension (composed from primitives,
/// so the backward pass is derived automatically).
pub fn layer_norm(v: &Var, gamma: &Var, beta: &Var, eps: f32) -> Var {
    let last = v.value().rank() - 1;
    let mu = mean_axis(v, last);
    let mu_b = reshape(&mu, {
        let mut d = mu.value().dims().to_vec();
        d.push(1);
        d
    });
    let centered = sub(v, &mu_b);
    let var = mean_axis(&square(&centered), last);
    let var_b = reshape(&var, {
        let mut d = var.value().dims().to_vec();
        d.push(1);
        d
    });
    let denom = sqrt(&add_scalar(&var_b, eps));
    let normed = div(&centered, &denom);
    add(&mul(&normed, gamma), beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Finite-difference gradient check for scalar-valued f(x).
    fn grad_check(x0: Tensor, f: impl Fn(&Tape, &Var) -> Var, tol: f32) {
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = f(&tape, &x);
        assert_eq!(y.value().numel(), 1, "grad_check needs scalar output");
        let grads = tape.backward(&y);
        let analytic = grads.get_or_zeros(&x).to_vec();

        let h = 1e-3f32;
        let base = x0.to_vec();
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += h;
            let mut minus = base.clone();
            minus[i] -= h;
            let tp = Tape::new();
            let fp = f(
                &tp,
                &tp.leaf(Tensor::from_vec(plus, x0.shape().clone()).unwrap()),
            )
            .value()
            .item();
            let tm = Tape::new();
            let fm = f(
                &tm,
                &tm.leaf(Tensor::from_vec(minus, x0.shape().clone()).unwrap()),
            )
            .value()
            .item();
            let numeric = (fp - fm) / (2.0 * h);
            assert!(
                (analytic[i] - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic {} vs numeric {}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn grad_check_elementwise_chain() {
        grad_check(
            Tensor::from_slice(&[0.5, -0.3, 1.2]),
            |_, x| mean_all(&sigmoid(&mul_scalar(x, 2.0))),
            1e-2,
        );
    }

    #[test]
    fn grad_check_tanh_square() {
        grad_check(
            Tensor::from_slice(&[0.1, 0.9, -0.7, 0.3]),
            |_, x| sum_all(&square(&tanh(x))),
            1e-2,
        );
    }

    #[test]
    fn grad_check_matmul() {
        grad_check(
            Tensor::from_vec(vec![0.2, -0.4, 0.6, 0.8, -1.0, 0.1], [2, 3]).unwrap(),
            |tape, x| {
                let w = tape
                    .leaf(Tensor::from_vec(vec![0.3, -0.2, 0.5, 0.7, 0.9, -0.1], [3, 2]).unwrap());
                mean_all(&matmul(x, &w))
            },
            1e-2,
        );
    }

    #[test]
    fn grad_check_softmax() {
        grad_check(
            Tensor::from_vec(vec![0.1, 0.5, -0.2, 0.8], [2, 2]).unwrap(),
            |_, x| {
                let s = softmax_last(x);
                // Weighted sum so the gradient isn't trivially zero.
                let w = s
                    .tape()
                    .leaf(Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], [2, 2]).unwrap());
                sum_all(&mul(&s, &w))
            },
            1e-2,
        );
    }

    #[test]
    fn grad_check_broadcast_add() {
        grad_check(
            Tensor::from_slice(&[0.3, -0.6]),
            |tape, x| {
                // x: [2] broadcast against [3,2] matrix.
                let m = tape.leaf(Tensor::arange(6).reshape([3, 2]).unwrap());
                sum_all(&square(&add(&m, x)))
            },
            1e-2,
        );
    }

    #[test]
    fn grad_check_div() {
        grad_check(
            Tensor::from_slice(&[1.5, 2.5, -3.0]),
            |tape, x| {
                let d = tape.leaf(Tensor::from_slice(&[2.0, 4.0, 5.0]));
                sum_all(&div(x, &d))
            },
            1e-2,
        );
    }

    #[test]
    fn grad_check_narrow_concat() {
        grad_check(
            Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]),
            |_, x| {
                let a = narrow(x, 0, 0, 2);
                let b = narrow(x, 0, 2, 2);
                let c = concat(&[&b, &a], 0);
                sum_all(&square(&c))
            },
            1e-2,
        );
    }

    #[test]
    fn grad_check_mean_axis() {
        grad_check(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap(),
            |_, x| sum_all(&square(&mean_axis(x, 1))),
            1e-2,
        );
    }

    #[test]
    fn grad_check_layer_norm() {
        grad_check(
            Tensor::from_vec(vec![0.5, 1.5, -0.5, 2.0, 0.1, -1.0], [2, 3]).unwrap(),
            |tape, x| {
                let gamma = tape.leaf(Tensor::ones([3]));
                let beta = tape.leaf(Tensor::zeros([3]));
                let w = tape
                    .leaf(Tensor::from_vec(vec![1.0, -1.0, 2.0, 0.5, 1.5, -0.5], [2, 3]).unwrap());
                sum_all(&mul(&layer_norm(x, &gamma, &beta, 1e-5), &w))
            },
            2e-2,
        );
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.to_vec().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn fused_bias_act_matches_composed_graph_bitwise() {
        let mut rng = st_tensor::random::rng_from_seed(41);
        let z0 = st_tensor::random::uniform([2, 3, 4], -2.0, 2.0, &mut rng);
        let b0 = st_tensor::random::uniform([4], -1.0, 1.0, &mut rng);
        for act in [Activation::Identity, Activation::Sigmoid, Activation::Tanh] {
            // Composed: add then activation, two nodes.
            let tape1 = Tape::new();
            let z1 = tape1.leaf(z0.clone());
            let b1 = tape1.leaf(b0.clone());
            let pre = add(&z1, &b1);
            let y1 = match act {
                Activation::Identity => pre,
                Activation::Sigmoid => sigmoid(&pre),
                Activation::Tanh => tanh(&pre),
            };
            let g1 = tape1.backward(&sum_all(&square(&y1)));
            // Fused: one node.
            let tape2 = Tape::new();
            let z2 = tape2.leaf(z0.clone());
            let b2 = tape2.leaf(b0.clone());
            let y2 = bias_act(&z2, &b2, act);
            let g2 = tape2.backward(&sum_all(&square(&y2)));
            assert_eq!(bits(y1.value()), bits(y2.value()), "{act:?} forward");
            assert_eq!(
                bits(g1.get(&z1).unwrap()),
                bits(g2.get(&z2).unwrap()),
                "{act:?} dz"
            );
            assert_eq!(
                bits(g1.get(&b1).unwrap()),
                bits(g2.get(&b2).unwrap()),
                "{act:?} db"
            );
        }
    }

    #[test]
    fn fused_gru_blend_matches_composed_graph_bitwise() {
        let mut rng = st_tensor::random::rng_from_seed(42);
        let u0 =
            st_tensor::ops::sigmoid(&st_tensor::random::uniform([2, 3, 4], -2.0, 2.0, &mut rng));
        let h0 = st_tensor::random::uniform([2, 3, 4], -1.0, 1.0, &mut rng);
        let c0 = st_tensor::ops::tanh(&st_tensor::random::uniform([2, 3, 4], -2.0, 2.0, &mut rng));
        // Composed: uh + (1-u)*c via five nodes.
        let tape1 = Tape::new();
        let (u1, h1, c1) = (
            tape1.leaf(u0.clone()),
            tape1.leaf(h0.clone()),
            tape1.leaf(c0.clone()),
        );
        let uh = mul(&u1, &h1);
        let one_minus_u = add_scalar(&neg(&u1), 1.0);
        let y1 = add(&uh, &mul(&one_minus_u, &c1));
        let g1 = tape1.backward(&sum_all(&square(&y1)));
        // Fused: one node.
        let tape2 = Tape::new();
        let (u2, h2, c2) = (
            tape2.leaf(u0.clone()),
            tape2.leaf(h0.clone()),
            tape2.leaf(c0.clone()),
        );
        let y2 = gru_blend(&u2, &h2, &c2);
        let g2 = tape2.backward(&sum_all(&square(&y2)));
        assert_eq!(bits(y1.value()), bits(y2.value()), "forward");
        for ((a1, a2), name) in [(&u1, &u2), (&h1, &h2), (&c1, &c2)]
            .into_iter()
            .zip(["du", "dh", "dc"])
        {
            assert_eq!(
                bits(g1.get(a1).unwrap()),
                bits(g2.get(a2).unwrap()),
                "{name}"
            );
        }
    }

    #[test]
    fn grad_check_fused_bias_act() {
        grad_check(
            Tensor::from_slice(&[0.5, -0.3, 1.2, 0.4]),
            |tape, x| {
                let z = reshape(x, [2, 2]);
                let b = tape.leaf(Tensor::from_slice(&[0.2, -0.6]));
                sum_all(&square(&bias_act(&z, &b, Activation::Sigmoid)))
            },
            1e-2,
        );
    }

    #[test]
    fn grad_check_fused_gru_blend() {
        grad_check(
            Tensor::from_slice(&[0.3, 0.7, 0.1, 0.9]),
            |tape, u| {
                let h = tape.leaf(Tensor::from_slice(&[1.0, -0.5, 0.25, 2.0]));
                let c = tape.leaf(Tensor::from_slice(&[-0.8, 0.6, 0.4, -0.2]));
                sum_all(&square(&gru_blend(u, &h, &c)))
            },
            1e-2,
        );
    }

    #[test]
    fn grad_check_bmm_shared_rhs() {
        grad_check(
            Tensor::from_vec((0..12).map(|i| 0.1 * i as f32).collect(), [2, 2, 3]).unwrap(),
            |tape, x| {
                let w = tape
                    .leaf(Tensor::from_vec(vec![0.2, -0.1, 0.4, 0.3, 0.6, -0.5], [3, 2]).unwrap());
                mean_all(&bmm(x, &w))
            },
            1e-2,
        );
    }

    #[test]
    fn grad_check_index_select() {
        grad_check(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]).unwrap(),
            |_, x| {
                // Select row 1 twice: its gradient must double.
                let g = index_select0(x, &[1, 1, 0]);
                sum_all(&square(&g))
            },
            1e-2,
        );
    }

    #[test]
    fn permute_roundtrip_gradient() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::arange(6).reshape([2, 3]).unwrap());
        let p = permute(&x, &[1, 0]);
        let y = sum_all(&p);
        let g = tape.backward(&y);
        assert_eq!(g.get(&x).unwrap().dims(), &[2, 3]);
        assert!(g.get(&x).unwrap().to_vec().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn stack0_shapes() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones([2, 2]));
        let b = tape.leaf(Tensor::zeros([2, 2]));
        let s = stack0(&[&a, &b]);
        assert_eq!(s.value().dims(), &[2, 2, 2]);
    }
}
