//! Checkpointing: binary state dicts for models and optimizers.
//!
//! Long distributed runs need resumable state: the paper's 30-epoch PeMS
//! runs burn hundreds of node-minutes, and a production integration of
//! PGT-I must survive job preemption. This module provides a compact,
//! versioned binary format (via the `bytes` crate) for parameter tensors
//! and Adam moments, with strict name/shape checking on restore — loading
//! a Chickenpox checkpoint into a PeMS model fails loudly, not silently.
//!
//! In DDP settings only rank 0 writes the checkpoint (replicas are
//! bit-identical by construction); every rank restores the same file, which
//! preserves the replica-equality invariant.

use crate::module::Param;
use crate::optim::Adam;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use st_tensor::Tensor;
use std::collections::BTreeMap;

/// Format magic (8 bytes) — bumped on breaking layout changes.
const MAGIC: &[u8; 8] = b"PGTCKPT1";

/// Errors surfaced by checkpoint encode/decode/restore.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer does not start with the expected magic/version.
    BadMagic,
    /// Buffer ended mid-record.
    Truncated,
    /// A stored string was not valid UTF-8.
    BadString,
    /// Restore target is missing an entry the checkpoint has, or vice versa.
    MissingEntry(String),
    /// Entry exists but with a different shape.
    ShapeMismatch {
        /// Entry name.
        name: String,
        /// Shape in the checkpoint.
        stored: Vec<usize>,
        /// Shape in the live model.
        expected: Vec<usize>,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a PGTCKPT1 checkpoint"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadString => write!(f, "invalid UTF-8 in checkpoint"),
            CheckpointError::MissingEntry(n) => write!(f, "missing entry: {n}"),
            CheckpointError::ShapeMismatch {
                name,
                stored,
                expected,
            } => write!(
                f,
                "shape mismatch for {name}: checkpoint {stored:?} vs model {expected:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// An ordered name → tensor map (the PyTorch `state_dict` analogue).
#[derive(Debug, Clone, Default)]
pub struct StateDict {
    entries: BTreeMap<String, Tensor>,
}

impl StateDict {
    /// Empty dict.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (replacing) an entry.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) {
        self.entries.insert(name.into(), value.contiguous());
    }

    /// Look up an entry.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.entries.iter()
    }

    /// Capture a parameter list. Names are prefixed with the parameter's
    /// position (`"3.gru_w"`) so repeated layer names stay unique and
    /// ordering mismatches are caught on restore.
    pub fn from_params(params: &[Param]) -> Self {
        let mut d = StateDict::new();
        for (i, p) in params.iter().enumerate() {
            d.insert(format!("{i}.{}", p.name()), p.value());
        }
        d
    }

    /// Restore into a parameter list (strict: same count, names, shapes).
    pub fn apply_to_params(&self, params: &[Param]) -> Result<(), CheckpointError> {
        for (i, p) in params.iter().enumerate() {
            let key = format!("{i}.{}", p.name());
            let stored = self
                .entries
                .get(&key)
                .ok_or_else(|| CheckpointError::MissingEntry(key.clone()))?;
            if stored.dims() != p.value().dims() {
                return Err(CheckpointError::ShapeMismatch {
                    name: key,
                    stored: stored.dims().to_vec(),
                    expected: p.value().dims().to_vec(),
                });
            }
        }
        if self.entries.len() != params.len() {
            let live: std::collections::BTreeSet<String> = params
                .iter()
                .enumerate()
                .map(|(i, p)| format!("{i}.{}", p.name()))
                .collect();
            let extra = self
                .entries
                .keys()
                .find(|k| !live.contains(*k))
                .cloned()
                .unwrap_or_default();
            return Err(CheckpointError::MissingEntry(format!(
                "checkpoint entry {extra} has no matching parameter"
            )));
        }
        for (i, p) in params.iter().enumerate() {
            let key = format!("{i}.{}", p.name());
            p.set_value(self.entries[&key].clone());
        }
        Ok(())
    }

    /// Capture Adam state (`t` plus first/second moments per parameter).
    pub fn from_adam(opt: &Adam) -> Self {
        let (t, m, v) = opt.export_state();
        let mut d = StateDict::new();
        d.insert("adam.t", Tensor::scalar(t as f32));
        for (i, mt) in m.iter().enumerate() {
            if let Some(mt) = mt {
                d.insert(format!("adam.m.{i}"), mt.clone());
            }
        }
        for (i, vt) in v.iter().enumerate() {
            if let Some(vt) = vt {
                d.insert(format!("adam.v.{i}"), vt.clone());
            }
        }
        d
    }

    /// Restore Adam state captured by [`StateDict::from_adam`].
    pub fn apply_to_adam(&self, opt: &mut Adam) -> Result<(), CheckpointError> {
        let t = self
            .entries
            .get("adam.t")
            .ok_or_else(|| CheckpointError::MissingEntry("adam.t".into()))?
            .item() as u64;
        let n = opt.num_params();
        let mut m = vec![None; n];
        let mut v = vec![None; n];
        for i in 0..n {
            m[i] = self.entries.get(&format!("adam.m.{i}")).cloned();
            v[i] = self.entries.get(&format!("adam.v.{i}")).cloned();
        }
        opt.import_state(t, m, v);
        Ok(())
    }

    /// Serialize to the binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(self.entries.len() as u32);
        for (name, tensor) in &self.entries {
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name.as_bytes());
            buf.put_u8(tensor.rank() as u8);
            for &d in tensor.dims() {
                buf.put_u64_le(d as u64);
            }
            for v in tensor.to_vec() {
                buf.put_f32_le(v);
            }
        }
        buf.freeze()
    }

    /// Deserialize from the binary format.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, CheckpointError> {
        if buf.len() < MAGIC.len() + 4 || &buf[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        buf.advance(MAGIC.len());
        let count = buf.get_u32_le() as usize;
        let mut d = StateDict::new();
        for _ in 0..count {
            if buf.remaining() < 2 {
                return Err(CheckpointError::Truncated);
            }
            let name_len = buf.get_u16_le() as usize;
            if buf.remaining() < name_len + 1 {
                return Err(CheckpointError::Truncated);
            }
            let name = std::str::from_utf8(&buf[..name_len])
                .map_err(|_| CheckpointError::BadString)?
                .to_string();
            buf.advance(name_len);
            let rank = buf.get_u8() as usize;
            if buf.remaining() < rank * 8 {
                return Err(CheckpointError::Truncated);
            }
            let dims: Vec<usize> = (0..rank).map(|_| buf.get_u64_le() as usize).collect();
            let numel: usize = dims.iter().product::<usize>().max(1);
            let numel = if rank == 0 { 1 } else { numel };
            if buf.remaining() < numel * 4 {
                return Err(CheckpointError::Truncated);
            }
            let data: Vec<f32> = (0..numel).map(|_| buf.get_f32_le()).collect();
            let tensor = if rank == 0 {
                Tensor::scalar(data[0])
            } else {
                Tensor::from_vec(data, dims).map_err(|_| CheckpointError::Truncated)?
            };
            d.entries.insert(name, tensor);
        }
        Ok(d)
    }
}

/// A full training checkpoint: model + optimizer + progress marker.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// Model parameters.
    pub model: StateDict,
    /// Optimizer state (empty when not captured).
    pub optimizer: StateDict,
    /// Next epoch to run.
    pub epoch: u64,
}

impl Checkpoint {
    /// Capture model + Adam + progress.
    pub fn capture(params: &[Param], opt: &Adam, epoch: u64) -> Self {
        Checkpoint {
            model: StateDict::from_params(params),
            optimizer: StateDict::from_adam(opt),
            epoch,
        }
    }

    /// Restore into model + Adam; returns the next epoch to run.
    pub fn restore(&self, params: &[Param], opt: &mut Adam) -> Result<u64, CheckpointError> {
        self.model.apply_to_params(params)?;
        self.optimizer.apply_to_adam(opt)?;
        Ok(self.epoch)
    }

    /// Serialize (sections are length-prefixed state dicts).
    pub fn to_bytes(&self) -> Bytes {
        let model = self.model.to_bytes();
        let opt = self.optimizer.to_bytes();
        let mut buf = BytesMut::with_capacity(model.len() + opt.len() + 24);
        buf.put_slice(MAGIC);
        buf.put_u64_le(self.epoch);
        buf.put_u64_le(model.len() as u64);
        buf.put_slice(&model);
        buf.put_u64_le(opt.len() as u64);
        buf.put_slice(&opt);
        buf.freeze()
    }

    /// Deserialize.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, CheckpointError> {
        if buf.len() < MAGIC.len() + 8 || &buf[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        buf.advance(MAGIC.len());
        let epoch = buf.get_u64_le();
        let take_section = |buf: &mut &[u8]| -> Result<StateDict, CheckpointError> {
            if buf.remaining() < 8 {
                return Err(CheckpointError::Truncated);
            }
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len {
                return Err(CheckpointError::Truncated);
            }
            let section = StateDict::from_bytes(&buf[..len])?;
            buf.advance(len);
            Ok(section)
        };
        let model = take_section(&mut buf)?;
        let optimizer = take_section(&mut buf)?;
        Ok(Checkpoint {
            model,
            optimizer,
            epoch,
        })
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Checkpoint::from_bytes(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Optimizer;

    fn params() -> Vec<Param> {
        vec![
            Param::new(
                "w",
                Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap(),
            ),
            Param::new("b", Tensor::from_slice(&[0.5, -0.5])),
        ]
    }

    #[test]
    fn state_dict_roundtrips_bitwise() {
        let ps = params();
        let d = StateDict::from_params(&ps);
        let restored = StateDict::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(d.len(), restored.len());
        for (name, t) in d.iter() {
            assert_eq!(t.to_vec(), restored.get(name).unwrap().to_vec(), "{name}");
            assert_eq!(t.dims(), restored.get(name).unwrap().dims(), "{name}");
        }
    }

    #[test]
    fn apply_restores_values() {
        let ps = params();
        let d = StateDict::from_params(&ps);
        // Perturb, then restore.
        ps[0].set_value(Tensor::zeros([2, 2]));
        d.apply_to_params(&ps).unwrap();
        assert_eq!(ps[0].value().to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn shape_mismatch_is_loud() {
        let ps = params();
        let d = StateDict::from_params(&ps);
        let other = vec![
            Param::new("w", Tensor::zeros([3, 2])),
            Param::new("b", Tensor::zeros([2])),
        ];
        match d.apply_to_params(&other) {
            Err(CheckpointError::ShapeMismatch { name, .. }) => assert_eq!(name, "0.w"),
            r => panic!("expected shape mismatch, got {r:?}"),
        }
    }

    #[test]
    fn missing_entry_is_loud() {
        let ps = params();
        let d = StateDict::from_params(&ps);
        let other = vec![Param::new("x", Tensor::zeros([2, 2]))];
        assert!(matches!(
            d.apply_to_params(&other),
            Err(CheckpointError::MissingEntry(_))
        ));
    }

    #[test]
    fn corrupt_buffers_are_rejected() {
        assert_eq!(
            StateDict::from_bytes(b"not a checkpoint").unwrap_err(),
            CheckpointError::BadMagic
        );
        let ps = params();
        let good = StateDict::from_params(&ps).to_bytes();
        let truncated = &good[..good.len() - 3];
        assert_eq!(
            StateDict::from_bytes(truncated).unwrap_err(),
            CheckpointError::Truncated
        );
    }

    #[test]
    fn full_checkpoint_resumes_adam_exactly() {
        // Train a tiny quadratic for 3 steps, checkpoint, train 2 more;
        // resuming from the checkpoint must reproduce those 2 steps exactly
        // (same Adam moments ⇒ same trajectory).
        let run = |resume_from: Option<&Checkpoint>| -> (Vec<f32>, Checkpoint) {
            let p = Param::new("w", Tensor::from_slice(&[4.0, -3.0]));
            let mut opt = Adam::new(vec![p.clone()], 0.1);
            let mut start = 0;
            if let Some(ck) = resume_from {
                start = ck.restore(std::slice::from_ref(&p), &mut opt).unwrap();
            }
            for _ in start..5 {
                // d/dw (w²/2) = w
                opt.zero_grad();
                p.set_grad(Some(p.value()));
                opt.step();
            }
            (p.value().to_vec(), Checkpoint::capture(&[p], &opt, 3))
        };
        // Uninterrupted run.
        let (direct, _) = run(None);
        // Interrupted: run 3 steps, capture, then resume.
        let p = Param::new("w", Tensor::from_slice(&[4.0, -3.0]));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..3 {
            opt.zero_grad();
            p.set_grad(Some(p.value()));
            opt.step();
        }
        let ck = Checkpoint::capture(&[p], &opt, 3);
        let bytes = ck.to_bytes();
        let ck2 = Checkpoint::from_bytes(&bytes).unwrap();
        let (resumed, _) = run(Some(&ck2));
        assert_eq!(direct, resumed, "resume must be bit-exact");
    }

    #[test]
    fn checkpoint_file_roundtrip() {
        let ps = params();
        let opt = Adam::new(ps.clone(), 0.01);
        let ck = Checkpoint::capture(&ps, &opt, 7);
        let dir = std::env::temp_dir().join("pgt_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        ck.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.epoch, 7);
        assert_eq!(loaded.model.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scalar_entries_roundtrip() {
        let mut d = StateDict::new();
        d.insert("t", Tensor::scalar(42.0));
        let r = StateDict::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(r.get("t").unwrap().item(), 42.0);
    }
}
