//! Loss functions and (non-differentiable) evaluation metrics.
//!
//! The paper reports MAE for the traffic/epidemic experiments (Tables 3, 5,
//! Figs 5, 8) and MSE for A3T-GCN (Table 6). Masked variants skip missing
//! sensor readings (encoded as 0.0 in PeMS-style data), matching the DCRNN
//! reference implementation.

use crate::ops;
use crate::tape::Var;
use st_tensor::ops as t;
use st_tensor::Tensor;

/// Differentiable mean absolute error.
pub fn mae(pred: &Var, target: &Var) -> Var {
    ops::mean_all(&ops::abs(&ops::sub(pred, target)))
}

/// Differentiable mean squared error.
pub fn mse(pred: &Var, target: &Var) -> Var {
    ops::mean_all(&ops::square(&ops::sub(pred, target)))
}

/// Differentiable root mean squared error.
pub fn rmse(pred: &Var, target: &Var) -> Var {
    ops::sqrt(&mse(pred, target))
}

/// Masked MAE: entries where `target == 0` (missing sensor readings) are
/// excluded, as in the DCRNN reference loss.
pub fn masked_mae(pred: &Var, target: &Var) -> Var {
    let mask = t::map(target.value(), |x| if x != 0.0 { 1.0 } else { 0.0 });
    let valid = t::sum_all(&mask).max(1.0);
    let mask_var = pred.tape().constant(mask);
    let diff = ops::abs(&ops::sub(pred, target));
    let masked = ops::mul(&diff, &mask_var);
    ops::mul_scalar(&ops::sum_all(&masked), 1.0 / valid)
}

// ---------------------------------------------------------------------
// Metric (tensor-level, non-differentiable) versions used for validation.
// ---------------------------------------------------------------------

/// MAE between two tensors.
pub fn mae_metric(pred: &Tensor, target: &Tensor) -> f32 {
    t::mean_all(&t::abs(&t::sub(pred, target).expect("same shape")))
}

/// MSE between two tensors.
pub fn mse_metric(pred: &Tensor, target: &Tensor) -> f32 {
    t::mean_all(&t::square(&t::sub(pred, target).expect("same shape")))
}

/// RMSE between two tensors.
pub fn rmse_metric(pred: &Tensor, target: &Tensor) -> f32 {
    mse_metric(pred, target).sqrt()
}

/// Mean absolute percentage error (targets of 0 are skipped).
pub fn mape_metric(pred: &Tensor, target: &Tensor) -> f32 {
    let p = pred.to_vec();
    let y = target.to_vec();
    let mut acc = 0.0f32;
    let mut n = 0usize;
    for (pi, yi) in p.iter().zip(&y) {
        if *yi != 0.0 {
            acc += ((pi - yi) / yi).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn mae_value_and_gradient() {
        let tape = Tape::new();
        let pred = tape.leaf(Tensor::from_slice(&[1.0, 2.0]));
        let target = tape.constant(Tensor::from_slice(&[0.0, 4.0]));
        let l = mae(&pred, &target);
        assert!((l.value().item() - 1.5).abs() < 1e-6);
        let g = tape.backward(&l);
        // d|e|/dpred = sign(e)/n = (+0.5, -0.5)
        assert_eq!(g.get(&pred).unwrap().to_vec(), vec![0.5, -0.5]);
    }

    #[test]
    fn mse_matches_metric() {
        let tape = Tape::new();
        let pred = tape.leaf(Tensor::from_slice(&[1.0, 3.0]));
        let target = tape.constant(Tensor::from_slice(&[0.0, 0.0]));
        let l = mse(&pred, &target);
        assert!((l.value().item() - 5.0).abs() < 1e-6);
        assert!((mse_metric(pred.value(), target.value()) - 5.0).abs() < 1e-6);
        assert!((rmse_metric(pred.value(), target.value()) - 5.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn masked_mae_ignores_zero_targets() {
        let tape = Tape::new();
        let pred = tape.leaf(Tensor::from_slice(&[5.0, 2.0]));
        let target = tape.constant(Tensor::from_slice(&[0.0, 4.0])); // first masked out
        let l = masked_mae(&pred, &target);
        assert!((l.value().item() - 2.0).abs() < 1e-6, "only |2-4| counted");
    }

    #[test]
    fn mape_skips_zeros() {
        let pred = Tensor::from_slice(&[2.0, 100.0]);
        let target = Tensor::from_slice(&[0.0, 50.0]);
        assert!((mape_metric(&pred, &target) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_loss_for_perfect_prediction() {
        let tape = Tape::new();
        let x = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let pred = tape.leaf(x.clone());
        let target = tape.constant(x);
        assert_eq!(mae(&pred, &target).value().item(), 0.0);
        assert_eq!(mse(&pred, &target).value().item(), 0.0);
    }
}
