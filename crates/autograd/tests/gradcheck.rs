//! Numerical gradient checking for every differentiable op.
//!
//! Each op is validated against central finite differences
//! `(f(x+ε) − f(x−ε)) / 2ε` on seeded random inputs. This is the ground
//! truth the whole training stack rests on: a wrong backward rule shows up
//! as slightly-worse convergence (easy to miss), not as a crash, so it
//! must be pinned here op by op.

use st_autograd::{loss, ops, Tape, Var};
use st_tensor::{random, Tensor};

/// Relative tolerance for f32 central differences.
const TOL: f32 = 2e-2;
/// Finite-difference step.
const EPS: f32 = 1e-2;

/// Compare analytic gradients against central differences for a scalar
/// function `build(tape, x) → scalar Var`.
fn gradcheck(name: &str, x: Tensor, build: impl Fn(&Tape, &Var) -> Var) {
    // Analytic.
    let tape = Tape::new();
    let leaf = tape.leaf(x.clone());
    let out = build(&tape, &leaf);
    assert_eq!(
        out.value().numel(),
        1,
        "{name}: gradcheck needs a scalar output"
    );
    let grads = tape.backward(&out);
    let analytic = grads.get(&leaf).expect("leaf gradient").to_vec();

    // Numerical.
    let base = x.to_vec();
    let eval = |vals: Vec<f32>| -> f32 {
        let t = Tensor::from_vec(vals, x.shape().clone()).unwrap();
        let tape = Tape::new();
        let leaf = tape.leaf(t);
        build(&tape, &leaf).value().item()
    };
    for i in 0..base.len() {
        let mut plus = base.clone();
        plus[i] += EPS;
        let mut minus = base.clone();
        minus[i] -= EPS;
        let numeric = (eval(plus) - eval(minus)) / (2.0 * EPS);
        let a = analytic[i];
        let denom = a.abs().max(numeric.abs()).max(1.0);
        assert!(
            (a - numeric).abs() / denom < TOL,
            "{name}: grad[{i}] analytic {a} vs numeric {numeric}"
        );
    }
}

fn input(shape: impl Into<st_tensor::Shape>, lo: f32, hi: f32, seed: u64) -> Tensor {
    random::uniform(shape, lo, hi, &mut random::rng_from_seed(seed))
}

#[test]
fn gradcheck_add() {
    let b = input([2, 3], -1.0, 1.0, 2);
    gradcheck("add", input([2, 3], -1.0, 1.0, 1), move |t, x| {
        ops::sum_all(&ops::add(x, &t.constant(b.clone())))
    });
}

#[test]
fn gradcheck_add_broadcast() {
    // Bias-style broadcast: [2,3] + [3].
    let x4 = input([2, 3], -1.0, 1.0, 3);
    gradcheck("add_broadcast", input([3], -1.0, 1.0, 4), move |t, b| {
        ops::sum_all(&ops::add(&t.constant(x4.clone()), b))
    });
}

#[test]
fn gradcheck_sub_and_neg() {
    let b = input([4], -1.0, 1.0, 6);
    gradcheck("sub", input([4], -1.0, 1.0, 5), move |t, x| {
        ops::sum_all(&ops::sub(x, &t.constant(b.clone())))
    });
    gradcheck("neg", input([4], -1.0, 1.0, 7), |_, x| {
        ops::sum_all(&ops::neg(x))
    });
}

#[test]
fn gradcheck_mul_both_sides() {
    let b = input([2, 2], 0.5, 1.5, 9);
    let b2 = b.clone();
    gradcheck("mul_lhs", input([2, 2], -1.0, 1.0, 8), move |t, x| {
        ops::sum_all(&ops::mul(x, &t.constant(b.clone())))
    });
    let a = input([2, 2], -1.0, 1.0, 8);
    gradcheck("mul_rhs", b2, move |t, x| {
        ops::sum_all(&ops::mul(&t.constant(a.clone()), x))
    });
}

#[test]
fn gradcheck_div() {
    // Keep the denominator well away from zero.
    let den = input([3], 1.0, 2.0, 11);
    gradcheck("div_num", input([3], -1.0, 1.0, 10), move |t, x| {
        ops::sum_all(&ops::div(x, &t.constant(den.clone())))
    });
    let num = input([3], -1.0, 1.0, 12);
    gradcheck("div_den", input([3], 1.0, 2.0, 13), move |t, x| {
        ops::sum_all(&ops::div(&t.constant(num.clone()), x))
    });
}

#[test]
fn gradcheck_scalar_ops() {
    gradcheck("add_scalar", input([3], -1.0, 1.0, 14), |_, x| {
        ops::sum_all(&ops::add_scalar(x, 2.5))
    });
    gradcheck("mul_scalar", input([3], -1.0, 1.0, 15), |_, x| {
        ops::sum_all(&ops::mul_scalar(x, -1.7))
    });
}

#[test]
fn gradcheck_square_sqrt() {
    gradcheck("square", input([4], -1.0, 1.0, 16), |_, x| {
        ops::sum_all(&ops::square(x))
    });
    // sqrt needs strictly positive inputs away from 0.
    gradcheck("sqrt", input([4], 0.5, 2.0, 17), |_, x| {
        ops::sum_all(&ops::sqrt(x))
    });
}

#[test]
fn gradcheck_abs_away_from_kink() {
    // |x| is non-differentiable at 0; sample away from it.
    gradcheck("abs_pos", input([3], 0.3, 1.0, 18), |_, x| {
        ops::sum_all(&ops::abs(x))
    });
    gradcheck("abs_neg", input([3], -1.0, -0.3, 19), |_, x| {
        ops::sum_all(&ops::abs(x))
    });
}

#[test]
fn gradcheck_activations() {
    gradcheck("exp", input([3], -1.0, 1.0, 20), |_, x| {
        ops::sum_all(&ops::exp(x))
    });
    gradcheck("sigmoid", input([5], -2.0, 2.0, 21), |_, x| {
        ops::sum_all(&ops::sigmoid(x))
    });
    gradcheck("tanh", input([5], -2.0, 2.0, 22), |_, x| {
        ops::sum_all(&ops::tanh(x))
    });
    gradcheck("relu", input([5], 0.2, 1.0, 23), |_, x| {
        ops::sum_all(&ops::relu(x))
    });
    gradcheck("gelu", input([5], -2.0, 2.0, 24), |_, x| {
        ops::sum_all(&ops::gelu(x))
    });
}

#[test]
fn gradcheck_matmul_both_sides() {
    let b = input([3, 2], -1.0, 1.0, 26);
    gradcheck("matmul_lhs", input([2, 3], -1.0, 1.0, 25), move |t, x| {
        ops::sum_all(&ops::matmul(x, &t.constant(b.clone())))
    });
    let a = input([2, 3], -1.0, 1.0, 27);
    gradcheck("matmul_rhs", input([3, 2], -1.0, 1.0, 28), move |t, x| {
        ops::sum_all(&ops::matmul(&t.constant(a.clone()), x))
    });
}

#[test]
fn gradcheck_bmm() {
    // Batched [B, N, K] @ [K, M].
    let w = input([3, 2], -1.0, 1.0, 30);
    gradcheck("bmm_lhs", input([2, 4, 3], -1.0, 1.0, 29), move |t, x| {
        ops::sum_all(&ops::bmm(x, &t.constant(w.clone())))
    });
    let a = input([2, 4, 3], -1.0, 1.0, 31);
    gradcheck("bmm_rhs", input([3, 2], -1.0, 1.0, 32), move |t, x| {
        ops::sum_all(&ops::bmm(&t.constant(a.clone()), x))
    });
}

#[test]
fn gradcheck_softmax() {
    // Weighted sum of softmax outputs exercises the full Jacobian.
    let w = input([2, 4], -1.0, 1.0, 34);
    gradcheck("softmax_last", input([2, 4], -1.5, 1.5, 33), move |t, x| {
        ops::sum_all(&ops::mul(&ops::softmax_last(x), &t.constant(w.clone())))
    });
}

#[test]
fn gradcheck_reductions() {
    gradcheck("mean_all", input([2, 3], -1.0, 1.0, 35), |_, x| {
        ops::mean_all(x)
    });
    let w = input([4], -1.0, 1.0, 37);
    gradcheck("mean_axis", input([3, 4], -1.0, 1.0, 36), move |t, x| {
        ops::sum_all(&ops::mul(&ops::mean_axis(x, 0), &t.constant(w.clone())))
    });
}

#[test]
fn gradcheck_shape_ops() {
    let w = input([2, 2], -1.0, 1.0, 39);
    gradcheck("narrow", input([4, 2], -1.0, 1.0, 38), move |t, x| {
        ops::sum_all(&ops::mul(&ops::narrow(x, 0, 1, 2), &t.constant(w.clone())))
    });
    let w2 = input([6], -1.0, 1.0, 41);
    gradcheck("reshape", input([2, 3], -1.0, 1.0, 40), move |t, x| {
        ops::sum_all(&ops::mul(&ops::reshape(x, [6]), &t.constant(w2.clone())))
    });
    let w3 = input([3, 2], -1.0, 1.0, 43);
    gradcheck("permute", input([2, 3], -1.0, 1.0, 42), move |t, x| {
        ops::sum_all(&ops::mul(
            &ops::permute(x, &[1, 0]),
            &t.constant(w3.clone()),
        ))
    });
}

#[test]
fn gradcheck_concat_and_stack() {
    let other = input([2, 2], -1.0, 1.0, 45);
    let w = input([2, 4], -1.0, 1.0, 46);
    gradcheck("concat", input([2, 2], -1.0, 1.0, 44), move |t, x| {
        let o = t.constant(other.clone());
        let cat = ops::concat(&[x, &o], 1);
        ops::sum_all(&ops::mul(&cat, &t.constant(w.clone())))
    });
    let other2 = input([2, 2], -1.0, 1.0, 48);
    let w4 = input([2, 2, 2], -1.0, 1.0, 49);
    gradcheck("stack0", input([2, 2], -1.0, 1.0, 47), move |t, x| {
        let o = t.constant(other2.clone());
        let st = ops::stack0(&[x, &o]);
        ops::sum_all(&ops::mul(&st, &t.constant(w4.clone())))
    });
}

#[test]
fn gradcheck_index_select() {
    // Repeated indices must *accumulate* gradient (the classic bug).
    let w = input([3, 2], -1.0, 1.0, 51);
    gradcheck(
        "index_select0",
        input([4, 2], -1.0, 1.0, 50),
        move |t, x| {
            let sel = ops::index_select0(x, &[1, 1, 3]);
            ops::sum_all(&ops::mul(&sel, &t.constant(w.clone())))
        },
    );
}

#[test]
fn gradcheck_layer_norm() {
    let gamma = input([4], 0.5, 1.5, 53);
    let beta = input([4], -0.5, 0.5, 54);
    gradcheck("layer_norm_x", input([2, 4], -1.0, 1.0, 52), move |t, x| {
        let g = t.constant(gamma.clone());
        let b = t.constant(beta.clone());
        ops::sum_all(&ops::layer_norm(x, &g, &b, 1e-5))
    });
    let x2 = input([2, 4], -1.0, 1.0, 55);
    let beta2 = input([4], -0.5, 0.5, 56);
    gradcheck("layer_norm_gamma", input([4], 0.5, 1.5, 57), move |t, g| {
        let x = t.constant(x2.clone());
        let b = t.constant(beta2.clone());
        ops::sum_all(&ops::layer_norm(&x, g, &b, 1e-5))
    });
}

#[test]
fn gradcheck_losses() {
    // MAE is non-differentiable at pred = target; keep a gap.
    let target = input([2, 3], 2.0, 3.0, 59);
    gradcheck("mae", input([2, 3], -1.0, 1.0, 58), move |t, x| {
        let tgt = t.constant(target.clone());
        loss::mae(x, &tgt)
    });
    let target2 = input([2, 3], -1.0, 1.0, 61);
    gradcheck("mse", input([2, 3], -1.0, 1.0, 60), move |t, x| {
        let tgt = t.constant(target2.clone());
        loss::mse(x, &tgt)
    });
}

#[test]
fn gradcheck_composite_gru_like_chain() {
    // A miniature GRU-flavored composite: σ/tanh gates, elementwise mixing,
    // a projection — the shape of the real DCGRU data path.
    let w = input([3, 3], -0.5, 0.5, 63);
    gradcheck("gru_chain", input([2, 3], -1.0, 1.0, 62), move |t, x| {
        let wv = t.constant(w.clone());
        let u = ops::sigmoid(&ops::matmul(x, &wv));
        let c = ops::tanh(x);
        let one_minus_u = ops::add_scalar(&ops::neg(&u), 1.0);
        let h = ops::add(&ops::mul(&u, x), &ops::mul(&one_minus_u, &c));
        ops::mean_all(&h)
    });
}
