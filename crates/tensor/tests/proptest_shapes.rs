//! Property-based tests on tensor view/stride invariants — the machinery
//! index-batching trusts for zero-copy snapshot reconstruction.

use proptest::prelude::*;
use st_tensor::{ops, Shape, Tensor};

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..6, 1usize..6, 1usize..6, any::<u32>()).prop_map(|(a, b, c, seed)| {
        let n = a * b * c;
        let mut state = seed as u64 | 1;
        let data: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state % 2000) as f32 - 1000.0) / 100.0
            })
            .collect();
        Tensor::from_vec(data, [a, b, c]).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// narrow + to_vec equals slicing the flattened buffer.
    #[test]
    fn narrow_is_a_true_view(t in arb_tensor(), start_frac in 0.0f64..1.0, len_frac in 0.0f64..1.0) {
        let d0 = t.dim(0);
        let start = ((d0 as f64 * start_frac) as usize).min(d0 - 1);
        let len = 1 + ((d0 - start - 1) as f64 * len_frac) as usize;
        let v = t.narrow(0, start, len).unwrap();
        prop_assert!(v.shares_storage(&t));
        let row = t.numel() / d0;
        let expect = &t.to_vec()[start * row..(start + len) * row];
        prop_assert_eq!(v.to_vec(), expect.to_vec());
    }

    /// Double transpose is the identity; transpose never copies.
    #[test]
    fn transpose_involution(t in arb_tensor()) {
        let tt = t.transpose(0, 2).unwrap().transpose(0, 2).unwrap();
        prop_assert!(tt.shares_storage(&t));
        prop_assert_eq!(tt.to_vec(), t.to_vec());
    }

    /// reshape preserves element order for contiguous tensors.
    #[test]
    fn reshape_preserves_order(t in arb_tensor()) {
        let flat = t.reshape([t.numel()]).unwrap();
        prop_assert_eq!(flat.to_vec(), t.to_vec());
        prop_assert!(flat.shares_storage(&t));
    }

    /// a + b == b + a and (a + b) - b == a (within float tolerance).
    #[test]
    fn add_commutes_and_inverts(t in arb_tensor()) {
        let u = ops::mul_scalar(&t, 0.5);
        let ab = ops::add(&t, &u).unwrap();
        let ba = ops::add(&u, &t).unwrap();
        prop_assert_eq!(ab.to_vec(), ba.to_vec());
        let back = ops::sub(&ab, &u).unwrap();
        prop_assert!(back.allclose(&t, 1e-5));
    }

    /// Broadcast result shape follows NumPy trailing-dimension rules.
    #[test]
    fn broadcast_shape_law(a in 1usize..5, b in 1usize..5) {
        let x = Shape::new([a, 1, b]);
        let y = Shape::new([b]);
        let r = x.broadcast_with(&y).unwrap();
        prop_assert_eq!(r.dims(), &[a, 1, b]);
        // Symmetric.
        let r2 = y.broadcast_with(&x).unwrap();
        prop_assert_eq!(r2.dims(), &[a, 1, b]);
    }

    /// index_select0 gathers exactly the requested rows.
    #[test]
    fn index_select_rows(t in arb_tensor(), pick in any::<u8>()) {
        let d0 = t.dim(0);
        let i = pick as usize % d0;
        let g = t.index_select0(&[i]).unwrap();
        prop_assert_eq!(g.to_vec(), t.select(0, i).unwrap().to_vec());
    }

    /// Concat along dim 0 then narrow recovers the parts.
    #[test]
    fn concat_narrow_roundtrip(t in arb_tensor()) {
        let u = ops::mul_scalar(&t, 2.0);
        let cat = ops::concat(&[&t, &u], 0).unwrap();
        let d0 = t.dim(0);
        prop_assert_eq!(cat.narrow(0, 0, d0).unwrap().to_vec(), t.to_vec());
        prop_assert_eq!(cat.narrow(0, d0, d0).unwrap().to_vec(), u.to_vec());
    }

    /// Copy-on-write: mutating a view never corrupts the base tensor.
    #[test]
    fn cow_isolation(t in arb_tensor()) {
        let before = t.to_vec();
        let mut view = t.narrow(0, 0, 1).unwrap();
        view.fill_(1234.5);
        prop_assert_eq!(t.to_vec(), before);
    }
}
