//! The core [`Tensor`] type: a strided view over shared storage.

use crate::shape::{for_each_offset, Shape};
use crate::storage::Storage;
use crate::{Result, TensorError};

/// A dense, strided, row-major tensor of `f32` over shared storage.
///
/// Cloning a tensor, or taking a view (`narrow`, `select`, `permute`,
/// `reshape` of a contiguous tensor) never copies element data.
#[derive(Debug, Clone)]
pub struct Tensor {
    storage: Storage,
    shape: Shape,
    strides: Vec<usize>,
    offset: usize,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Zero-filled tensor of the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let strides = shape.contiguous_strides();
        Tensor {
            storage: Storage::zeros(shape.numel()),
            shape,
            strides,
            offset: 0,
        }
    }

    /// Tensor of the given shape filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let strides = shape.contiguous_strides();
        Tensor {
            storage: Storage::from_vec(vec![value; shape.numel()]),
            shape,
            strides,
            offset: 0,
        }
    }

    /// Tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            storage: Storage::from_vec(vec![value]),
            shape: Shape::scalar(),
            strides: Vec::new(),
            offset: 0,
        }
    }

    /// Build a tensor from a flat `Vec` in row-major order.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::Invalid {
                op: "from_vec",
                msg: format!("data len {} != numel {}", data.len(), shape.numel()),
            });
        }
        let strides = shape.contiguous_strides();
        Ok(Tensor {
            storage: Storage::from_vec(data),
            shape,
            strides,
            offset: 0,
        })
    }

    /// 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor::from_vec(data.to_vec(), [data.len()]).expect("slice shape always matches")
    }

    /// `0, 1, ..., n-1` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), [n]).expect("arange shape")
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_vec(data, [n, n]).expect("eye shape")
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Size of dimension `d`.
    pub fn dim(&self, d: usize) -> usize {
        self.shape.dim(d)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Strides in elements.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Element offset of this view into its storage.
    pub fn storage_offset(&self) -> usize {
        self.offset
    }

    /// The shared storage backing this tensor.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// True when this view shares an allocation with `other` — the zero-copy
    /// property index-batching snapshots are tested against.
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        self.storage.ptr_eq(&other.storage)
    }

    /// True when elements are laid out contiguously in row-major order.
    pub fn is_contiguous(&self) -> bool {
        self.strides == self.shape.contiguous_strides()
    }

    // ------------------------------------------------------------------
    // Element access
    // ------------------------------------------------------------------

    /// Linear storage offset for a multi-dimensional index.
    fn offset_of(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::Invalid {
                op: "index",
                msg: format!("index rank {} != tensor rank {}", index.len(), self.rank()),
            });
        }
        let mut off = self.offset;
        for (d, &i) in index.iter().enumerate() {
            if i >= self.shape.dim(d) {
                return Err(TensorError::OutOfBounds {
                    op: "index",
                    index: i,
                    bound: self.shape.dim(d),
                });
            }
            off += i * self.strides[d];
        }
        Ok(off)
    }

    /// Read a single element.
    pub fn at(&self, index: &[usize]) -> f32 {
        let off = self.offset_of(index).expect("index in bounds");
        self.storage.as_slice()[off]
    }

    /// Read a scalar tensor's single value.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a single-element tensor");
        self.storage.as_slice()[self.offset]
    }

    /// Write a single element (copy-on-write if storage is shared).
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset_of(index).expect("index in bounds");
        self.storage.make_mut()[off] = value;
    }

    /// Contiguous read-only element slice. Errors for non-contiguous views.
    pub fn as_slice(&self) -> Result<&[f32]> {
        if !self.is_contiguous() {
            return Err(TensorError::NotContiguous { op: "as_slice" });
        }
        Ok(&self.storage.as_slice()[self.offset..self.offset + self.numel()])
    }

    /// Copy this tensor's elements into a fresh `Vec` in row-major order.
    pub fn to_vec(&self) -> Vec<f32> {
        if let Ok(s) = self.as_slice() {
            return s.to_vec();
        }
        let mut out = Vec::with_capacity(self.numel());
        let data = self.storage.as_slice();
        for_each_offset(self.dims(), &self.strides, self.offset, |o| {
            out.push(data[o]);
        });
        out
    }

    /// Mutable contiguous slice with copy-on-write. If the tensor is a
    /// non-contiguous view it is first gathered into fresh contiguous storage.
    pub fn make_mut_contiguous(&mut self) -> &mut [f32] {
        if !self.is_contiguous() || self.offset != 0 || self.storage.len() != self.numel() {
            let v = self.to_vec();
            self.storage = Storage::from_vec(v);
            self.strides = self.shape.contiguous_strides();
            self.offset = 0;
        }
        self.storage.make_mut()
    }

    /// Return a contiguous tensor with the same contents (self if already
    /// contiguous; otherwise a gathered copy).
    pub fn contiguous(&self) -> Tensor {
        if self.is_contiguous() {
            self.clone()
        } else {
            Tensor::from_vec(self.to_vec(), self.shape.clone()).expect("same numel")
        }
    }

    // ------------------------------------------------------------------
    // Views (never copy)
    // ------------------------------------------------------------------

    /// Restrict dimension `dim` to `[start, start + len)`. Zero-copy.
    ///
    /// This is the primitive used by index-batching: a snapshot with window
    /// start `s` and horizon `h` is `data.narrow(0, s, h)` and its label is
    /// `data.narrow(0, s + h, h)` — both views of the same storage.
    pub fn narrow(&self, dim: usize, start: usize, len: usize) -> Result<Tensor> {
        if dim >= self.rank() {
            return Err(TensorError::Invalid {
                op: "narrow",
                msg: format!("dim {dim} out of range for rank {}", self.rank()),
            });
        }
        if start + len > self.shape.dim(dim) {
            return Err(TensorError::OutOfBounds {
                op: "narrow",
                index: start + len,
                bound: self.shape.dim(dim),
            });
        }
        let mut dims = self.shape.dims().to_vec();
        dims[dim] = len;
        Ok(Tensor {
            storage: self.storage.clone(),
            shape: Shape::new(dims),
            strides: self.strides.clone(),
            offset: self.offset + start * self.strides[dim],
        })
    }

    /// Drop dimension `dim` by fixing it to `index`. Zero-copy.
    pub fn select(&self, dim: usize, index: usize) -> Result<Tensor> {
        let narrowed = self.narrow(dim, index, 1)?;
        let mut dims = narrowed.shape.dims().to_vec();
        let mut strides = narrowed.strides.clone();
        dims.remove(dim);
        strides.remove(dim);
        Ok(Tensor {
            storage: narrowed.storage,
            shape: Shape::new(dims),
            strides,
            offset: narrowed.offset,
        })
    }

    /// Reorder dimensions. Zero-copy.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        if perm.len() != self.rank() {
            return Err(TensorError::Invalid {
                op: "permute",
                msg: format!("perm len {} != rank {}", perm.len(), self.rank()),
            });
        }
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            if p >= self.rank() || seen[p] {
                return Err(TensorError::Invalid {
                    op: "permute",
                    msg: format!("invalid permutation {perm:?}"),
                });
            }
            seen[p] = true;
        }
        let dims = perm.iter().map(|&p| self.shape.dim(p)).collect::<Vec<_>>();
        let strides = perm.iter().map(|&p| self.strides[p]).collect::<Vec<_>>();
        Ok(Tensor {
            storage: self.storage.clone(),
            shape: Shape::new(dims),
            strides,
            offset: self.offset,
        })
    }

    /// Swap two dimensions (zero-copy transpose).
    pub fn transpose(&self, d0: usize, d1: usize) -> Result<Tensor> {
        let mut perm: Vec<usize> = (0..self.rank()).collect();
        if d0 >= self.rank() || d1 >= self.rank() {
            return Err(TensorError::Invalid {
                op: "transpose",
                msg: format!("dims ({d0},{d1}) out of range for rank {}", self.rank()),
            });
        }
        perm.swap(d0, d1);
        self.permute(&perm)
    }

    /// 2-D matrix transpose.
    pub fn t(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::Invalid {
                op: "t",
                msg: format!("t() requires rank 2, got {}", self.rank()),
            });
        }
        self.transpose(0, 1)
    }

    /// Reinterpret the shape. Zero-copy for contiguous tensors, otherwise the
    /// data is gathered first.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                lhs: self.dims().to_vec(),
                rhs: shape.dims().to_vec(),
            });
        }
        let base = self.contiguous();
        let strides = shape.contiguous_strides();
        Ok(Tensor {
            storage: base.storage,
            shape,
            strides,
            offset: base.offset,
        })
    }

    /// Insert a size-1 dimension at `dim`. Zero-copy for contiguous tensors.
    pub fn unsqueeze(&self, dim: usize) -> Result<Tensor> {
        let mut dims = self.dims().to_vec();
        if dim > dims.len() {
            return Err(TensorError::Invalid {
                op: "unsqueeze",
                msg: format!("dim {dim} > rank {}", dims.len()),
            });
        }
        dims.insert(dim, 1);
        self.reshape(dims)
    }

    /// Remove a size-1 dimension at `dim`.
    pub fn squeeze(&self, dim: usize) -> Result<Tensor> {
        let mut dims = self.dims().to_vec();
        if dim >= dims.len() || dims[dim] != 1 {
            return Err(TensorError::Invalid {
                op: "squeeze",
                msg: format!("dim {dim} is not size-1 in {dims:?}"),
            });
        }
        dims.remove(dim);
        self.reshape(dims)
    }

    /// Materialize a broadcast of this tensor to `target` (copies data).
    pub fn broadcast_to(&self, target: &Shape) -> Result<Tensor> {
        let bshape = self.shape.broadcast_with(target)?;
        if !bshape.same_as(target) {
            return Err(TensorError::ShapeMismatch {
                op: "broadcast_to",
                lhs: self.dims().to_vec(),
                rhs: target.dims().to_vec(),
            });
        }
        if self.shape.same_as(target) {
            return Ok(self.clone());
        }
        // Virtual strides: broadcast dims get stride 0.
        let rank = target.rank();
        let lead = rank - self.rank();
        let mut vstrides = vec![0usize; rank];
        for d in 0..self.rank() {
            vstrides[lead + d] = if self.shape.dim(d) == 1 {
                0
            } else {
                self.strides[d]
            };
        }
        let data = self.storage.as_slice();
        let mut out = Vec::with_capacity(target.numel());
        for_each_offset(target.dims(), &vstrides, self.offset, |o| {
            out.push(data[o]);
        });
        Tensor::from_vec(out, target.clone())
    }

    // ------------------------------------------------------------------
    // In-place mutation (copy-on-write)
    // ------------------------------------------------------------------

    /// Set every element to `value`.
    pub fn fill_(&mut self, value: f32) {
        for x in self.make_mut_contiguous() {
            *x = value;
        }
    }

    /// `self += alpha * other` (elementwise, shapes must match exactly).
    /// Used on optimizer fast paths to avoid temporaries.
    pub fn add_scaled_(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        if !self.shape.same_as(other.shape()) {
            return Err(TensorError::ShapeMismatch {
                op: "add_scaled_",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let rhs = other.contiguous();
        let rhs_slice = rhs.as_slice().expect("contiguous");
        let lhs = self.make_mut_contiguous();
        for (a, &b) in lhs.iter_mut().zip(rhs_slice) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiply every element by `s` in place.
    pub fn scale_(&mut self, s: f32) {
        for x in self.make_mut_contiguous() {
            *x *= s;
        }
    }

    /// Copy `src` into this tensor (shapes must match).
    pub fn copy_from(&mut self, src: &Tensor) -> Result<()> {
        if !self.shape.same_as(src.shape()) {
            return Err(TensorError::ShapeMismatch {
                op: "copy_from",
                lhs: self.dims().to_vec(),
                rhs: src.dims().to_vec(),
            });
        }
        let v = src.to_vec();
        self.make_mut_contiguous().copy_from_slice(&v);
        Ok(())
    }

    /// Gather rows of dimension 0 by `indices` into a new tensor
    /// (the batching primitive: assemble a minibatch from sample indices).
    pub fn index_select0(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::Invalid {
                op: "index_select0",
                msg: "rank-0 tensor".into(),
            });
        }
        let row = self.numel() / self.dim(0).max(1);
        let mut out = Vec::with_capacity(indices.len() * row);
        for &i in indices {
            if i >= self.dim(0) {
                return Err(TensorError::OutOfBounds {
                    op: "index_select0",
                    index: i,
                    bound: self.dim(0),
                });
            }
            let r = self.select(0, i)?;
            out.extend_from_slice(&r.to_vec());
        }
        let mut dims = self.dims().to_vec();
        dims[0] = indices.len();
        Tensor::from_vec(out, dims)
    }

    /// Approximate elementwise equality (for tests).
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        if !self.shape.same_as(other.shape()) {
            return false;
        }
        self.to_vec()
            .iter()
            .zip(other.to_vec().iter())
            .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }

    /// Bytes occupied by this view's *elements* (not its storage), assuming
    /// the given element width. Used by the memory-accounting layer.
    pub fn view_bytes(&self, elem_bytes: usize) -> usize {
        self.numel() * elem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_read() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[1, 0, 2]), 14.0);
    }

    #[test]
    fn narrow_is_zero_copy_view() {
        let t = Tensor::arange(10).reshape([5, 2]).unwrap();
        let v = t.narrow(0, 1, 3).unwrap();
        assert_eq!(v.dims(), &[3, 2]);
        assert_eq!(v.at(&[0, 0]), 2.0);
        assert!(v.shares_storage(&t));
        assert!(v.is_contiguous() || v.storage_offset() == 2);
    }

    #[test]
    fn narrow_window_pair_matches_index_batching_semantics() {
        // data[s..s+h] and data[s+h..s+2h] as in Fig. 4 of the paper.
        let e = 12;
        let h = 3;
        let t = Tensor::arange(e);
        let s = 2;
        let x = t.narrow(0, s, h).unwrap();
        let y = t.narrow(0, s + h, h).unwrap();
        assert_eq!(x.to_vec(), vec![2.0, 3.0, 4.0]);
        assert_eq!(y.to_vec(), vec![5.0, 6.0, 7.0]);
        assert!(x.shares_storage(&t) && y.shares_storage(&t));
    }

    #[test]
    fn select_drops_dim() {
        let t = Tensor::arange(24).reshape([2, 3, 4]).unwrap();
        let s = t.select(1, 2).unwrap();
        assert_eq!(s.dims(), &[2, 4]);
        assert_eq!(s.at(&[0, 0]), 8.0);
        assert_eq!(s.at(&[1, 3]), 23.0);
    }

    #[test]
    fn transpose_and_to_vec() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let tt = t.t().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert!(!tt.is_contiguous());
        assert_eq!(tt.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(tt.shares_storage(&t));
    }

    #[test]
    fn reshape_contiguous_shares_storage() {
        let t = Tensor::arange(6);
        let r = t.reshape([2, 3]).unwrap();
        assert!(r.shares_storage(&t));
    }

    #[test]
    fn reshape_noncontiguous_copies() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        let tt = t.t().unwrap();
        let r = tt.reshape([6]).unwrap();
        assert_eq!(r.to_vec(), vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn copy_on_write_preserves_views() {
        let t = Tensor::arange(4);
        let mut v = t.narrow(0, 0, 2).unwrap();
        v.fill_(7.0);
        // The original is untouched.
        assert_eq!(t.to_vec(), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(v.to_vec(), vec![7.0, 7.0]);
    }

    #[test]
    fn index_select0_gathers_rows() {
        let t = Tensor::arange(12).reshape([4, 3]).unwrap();
        let g = t.index_select0(&[3, 0, 3]).unwrap();
        assert_eq!(g.dims(), &[3, 3]);
        assert_eq!(
            g.to_vec(),
            vec![9.0, 10.0, 11.0, 0.0, 1.0, 2.0, 9.0, 10.0, 11.0]
        );
    }

    #[test]
    fn broadcast_to_materializes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]).unwrap();
        let b = t.broadcast_to(&Shape::new([2, 3])).unwrap();
        assert_eq!(b.to_vec(), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn unsqueeze_squeeze_roundtrip() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        let u = t.unsqueeze(1).unwrap();
        assert_eq!(u.dims(), &[2, 1, 3]);
        let s = u.squeeze(1).unwrap();
        assert_eq!(s.dims(), &[2, 3]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]), 1.0);
        assert_eq!(i.at(&[0, 1]), 0.0);
        assert_eq!(i.at(&[2, 2]), 1.0);
    }

    #[test]
    fn out_of_bounds_errors() {
        let t = Tensor::arange(4).reshape([2, 2]).unwrap();
        assert!(t.narrow(0, 1, 2).is_err());
        assert!(t.select(2, 0).is_err());
        assert!(t.index_select0(&[2]).is_err());
    }
}
