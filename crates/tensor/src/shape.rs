//! Shape and stride arithmetic.
//!
//! A [`Shape`] is a thin wrapper over `Vec<usize>` with the index math needed
//! for strided tensors: row-major (C-order) strides, broadcast resolution, and
//! linear-offset computation.

use crate::{Result, TensorError};

/// The dimensions of a tensor, in row-major order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Create a shape from a dimension list.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Scalar shape (rank 0).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `d`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major (C-order) strides, in elements.
    pub fn contiguous_strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1usize;
        for (i, &d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d.max(1);
        }
        strides
    }

    /// Resolve the broadcast shape of `self` and `other` under NumPy rules:
    /// trailing dimensions must be equal or one of them must be 1.
    pub fn broadcast_with(&self, other: &Shape) -> Result<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0usize; rank];
        for (i, dim) in dims.iter_mut().enumerate() {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.0[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.0[i - (rank - other.rank())]
            };
            if a == b || a == 1 || b == 1 {
                *dim = a.max(b);
            } else {
                return Err(TensorError::ShapeMismatch {
                    op: "broadcast",
                    lhs: self.0.clone(),
                    rhs: other.0.clone(),
                });
            }
        }
        Ok(Shape(dims))
    }

    /// True when both shapes have identical dims.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

/// Iterate over all multi-dimensional indices of `dims` in row-major order,
/// calling `f` with the flattened strided offset computed from `strides`.
///
/// Used by non-contiguous kernels; hot paths special-case contiguous layouts.
pub fn for_each_offset(dims: &[usize], strides: &[usize], base: usize, mut f: impl FnMut(usize)) {
    if dims.is_empty() {
        f(base);
        return;
    }
    let rank = dims.len();
    let mut idx = vec![0usize; rank];
    let total: usize = dims.iter().product();
    let mut offset = base;
    for _ in 0..total {
        f(offset);
        // Increment the odometer from the innermost dimension.
        for d in (0..rank).rev() {
            idx[d] += 1;
            offset += strides[d];
            if idx[d] < dims[d] {
                break;
            }
            offset -= strides[d] * dims[d];
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_strides_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.contiguous_strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.contiguous_strides().is_empty());
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new([4, 1, 3]);
        let b = Shape::new([2, 3]);
        assert_eq!(a.broadcast_with(&b).unwrap().dims(), &[4, 2, 3]);
        let c = Shape::new([5]);
        assert!(a.broadcast_with(&c).is_err());
    }

    #[test]
    fn broadcast_same_shape_is_identity() {
        let a = Shape::new([2, 3]);
        assert_eq!(a.broadcast_with(&a).unwrap(), a);
    }

    #[test]
    fn for_each_offset_visits_row_major() {
        let dims = [2usize, 3];
        let strides = [3usize, 1];
        let mut seen = Vec::new();
        for_each_offset(&dims, &strides, 0, |o| seen.push(o));
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn for_each_offset_transposed() {
        // 2x3 viewed as the transpose of a 3x2 buffer: strides (1, 2).
        let dims = [2usize, 3];
        let strides = [1usize, 2];
        let mut seen = Vec::new();
        for_each_offset(&dims, &strides, 0, |o| seen.push(o));
        assert_eq!(seen, vec![0, 2, 4, 1, 3, 5]);
    }
}
