//! Elementwise binary/unary kernels with NumPy-style broadcasting.

use crate::backend::{self, KernelClass};
use crate::shape::{for_each_offset, Shape};
use crate::{Result, Tensor, TensorError};

/// Apply `f` elementwise to broadcast-aligned `a` and `b`.
pub fn zip_with(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
    backend::timed(KernelClass::Elementwise, || {
        let out_shape = a.shape().broadcast_with(b.shape())?;
        // Fast path: identical contiguous shapes.
        if a.shape().same_as(b.shape()) {
            if let (Ok(sa), Ok(sb)) = (a.as_slice(), b.as_slice()) {
                let data = sa.iter().zip(sb).map(|(&x, &y)| f(x, y)).collect();
                return Tensor::from_vec(data, out_shape);
            }
        }
        let av = gather_broadcast(a, &out_shape);
        let bv = gather_broadcast(b, &out_shape);
        let data = av.iter().zip(bv.iter()).map(|(&x, &y)| f(x, y)).collect();
        Tensor::from_vec(data, out_shape)
    })
}

/// In-place `a += b` for exactly matching shapes — the gradient
/// accumulator's fast path. Reuses `a`'s buffer when uniquely owned
/// (copy-on-write otherwise) instead of allocating a sum tensor; the
/// element walk and `x + y` expression are identical to [`add`]'s
/// same-shape fast path, so results are bit-identical to the allocating
/// op.
pub fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<()> {
    check_same_shape("add_assign", a, b)?;
    let bc = b.contiguous();
    let bs = bc.as_slice().expect("contiguous");
    backend::timed(KernelClass::Elementwise, || {
        let av = a.make_mut_contiguous();
        for (x, &y) in av.iter_mut().zip(bs) {
            *x += y;
        }
    });
    Ok(())
}

/// Collect `t`'s elements broadcast to `target` into a flat row-major vec.
fn gather_broadcast(t: &Tensor, target: &Shape) -> Vec<f32> {
    if t.shape().same_as(target) {
        return t.to_vec();
    }
    let rank = target.rank();
    let lead = rank - t.rank();
    let mut vstrides = vec![0usize; rank];
    for d in 0..t.rank() {
        vstrides[lead + d] = if t.shape().dim(d) == 1 {
            0
        } else {
            t.strides()[d]
        };
    }
    let data = t.storage().as_slice();
    let mut out = Vec::with_capacity(target.numel());
    for_each_offset(target.dims(), &vstrides, t.storage_offset(), |o| {
        out.push(data[o]);
    });
    out
}

/// Apply `f` to every element.
pub fn map(t: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    backend::timed(KernelClass::Elementwise, || {
        let data = t.to_vec().into_iter().map(f).collect();
        Tensor::from_vec(data, t.shape().clone()).expect("same numel")
    })
}

/// `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x + y)
}

/// `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x - y)
}

/// `a * b` with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x * y)
}

/// `a / b` with broadcasting.
pub fn div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x / y)
}

/// `t + s` for a scalar `s`.
pub fn add_scalar(t: &Tensor, s: f32) -> Tensor {
    map(t, |x| x + s)
}

/// `t * s` for a scalar `s`.
pub fn mul_scalar(t: &Tensor, s: f32) -> Tensor {
    map(t, |x| x * s)
}

/// `-t`.
pub fn neg(t: &Tensor) -> Tensor {
    map(t, |x| -x)
}

/// Elementwise absolute value.
pub fn abs(t: &Tensor) -> Tensor {
    map(t, |x| x.abs())
}

/// Elementwise square.
pub fn square(t: &Tensor) -> Tensor {
    map(t, |x| x * x)
}

/// Elementwise square root.
pub fn sqrt(t: &Tensor) -> Tensor {
    map(t, |x| x.sqrt())
}

/// Elementwise natural exponential.
pub fn exp(t: &Tensor) -> Tensor {
    map(t, |x| x.exp())
}

/// Elementwise natural log.
pub fn ln(t: &Tensor) -> Tensor {
    map(t, |x| x.ln())
}

/// Elementwise power with a scalar exponent.
pub fn powf(t: &Tensor, e: f32) -> Tensor {
    map(t, |x| x.powf(e))
}

/// Elementwise maximum of two tensors with broadcasting.
pub fn maximum(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, f32::max)
}

/// Elementwise minimum of two tensors with broadcasting.
pub fn minimum(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, f32::min)
}

/// Clamp values into `[lo, hi]`.
pub fn clamp(t: &Tensor, lo: f32, hi: f32) -> Tensor {
    map(t, |x| x.clamp(lo, hi))
}

/// Linear interpolation `a * (1 - w) + b * w` where `w` broadcasts.
pub fn lerp(a: &Tensor, b: &Tensor, w: &Tensor) -> Result<Tensor> {
    let one_minus = map(w, |x| 1.0 - x);
    add(&mul(a, &one_minus)?, &mul(b, w)?)
}

/// Validate shapes match exactly (no broadcasting) — used by gradient code.
pub fn check_same_shape(op: &'static str, a: &Tensor, b: &Tensor) -> Result<()> {
    if a.shape().same_as(b.shape()) {
        Ok(())
    } else {
        Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[10.0, 20.0, 30.0]);
        assert_eq!(add(&a, &b).unwrap().to_vec(), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn add_broadcast_row() {
        let a = Tensor::arange(6).reshape([2, 3]).unwrap();
        let b = Tensor::from_slice(&[10.0, 20.0, 30.0]); // [3]
        let c = add(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn mul_broadcast_col() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::from_vec(vec![2.0, 3.0], [2, 1]).unwrap();
        let c = mul(&a, &b).unwrap();
        assert_eq!(c.to_vec(), vec![2.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn broadcast_mismatch_errors() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::ones([4]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn zip_on_views_uses_strides() {
        let a = Tensor::arange(6).reshape([2, 3]).unwrap();
        let at = a.t().unwrap(); // [3,2] non-contiguous
        let b = Tensor::zeros([3, 2]);
        let c = add(&at, &b).unwrap();
        assert_eq!(c.to_vec(), vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn unary_ops() {
        let t = Tensor::from_slice(&[-2.0, 4.0]);
        assert_eq!(abs(&t).to_vec(), vec![2.0, 4.0]);
        assert_eq!(square(&t).to_vec(), vec![4.0, 16.0]);
        assert_eq!(sqrt(&square(&t)).to_vec(), vec![2.0, 4.0]);
        assert_eq!(neg(&t).to_vec(), vec![2.0, -4.0]);
        assert_eq!(clamp(&t, -1.0, 3.0).to_vec(), vec![-1.0, 3.0]);
    }

    #[test]
    fn scalar_ops() {
        let t = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(add_scalar(&t, 1.0).to_vec(), vec![2.0, 3.0]);
        assert_eq!(mul_scalar(&t, -2.0).to_vec(), vec![-2.0, -4.0]);
    }

    #[test]
    fn add_assign_matches_add_and_respects_cow() {
        let mut a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let shared = a.clone();
        let b = Tensor::from_slice(&[0.5, -1.0, 4.0]);
        let want = add(&a, &b).unwrap().to_vec();
        add_assign(&mut a, &b).unwrap();
        assert_eq!(a.to_vec(), want);
        assert_eq!(shared.to_vec(), vec![1.0, 2.0, 3.0], "clone untouched");
        // Shape mismatch (even broadcastable) is rejected.
        assert!(add_assign(&mut a, &Tensor::ones([1])).is_err());
        // Non-contiguous views accumulate through a contiguous copy.
        let m = Tensor::arange(4).reshape([2, 2]).unwrap();
        let mut mt = m.t().unwrap();
        add_assign(&mut mt, &Tensor::ones([2, 2])).unwrap();
        assert_eq!(mt.to_vec(), vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn lerp_interpolates() {
        let a = Tensor::from_slice(&[0.0, 0.0]);
        let b = Tensor::from_slice(&[10.0, 10.0]);
        let w = Tensor::from_slice(&[0.25, 0.75]);
        assert_eq!(lerp(&a, &b, &w).unwrap().to_vec(), vec![2.5, 7.5]);
    }
}
