//! Fused elementwise kernels for the recurrent gate path.
//!
//! The DCRNN cell historically composed its gates from five-plus tensor
//! ops, materializing an intermediate per op. These entry points collapse
//! the two hot compositions — `z + bias → activation` and the GRU blend
//! `u⊙h + (1−u)⊙c` — into single backend-dispatched kernels that walk the
//! data once and allocate only the output. Per the backend contract, the
//! fused per-element expressions replicate the composed ones exactly, so
//! results are bit-identical to the unfused op chain.

use crate::backend::{self, Activation, KernelClass};
use crate::ops::map;
use crate::{Result, Tensor, TensorError};

/// Fused `act(z + bias)` where `bias` is rank-1 and broadcasts over `z`'s
/// last dimension — the `dconv → add-bias → σ/tanh` gate tail in one pass.
pub fn bias_act(z: &Tensor, bias: &Tensor, act: Activation) -> Result<Tensor> {
    if bias.rank() != 1 || z.rank() == 0 || z.dim(z.rank() - 1) != bias.dim(0) {
        return Err(TensorError::ShapeMismatch {
            op: "bias_act",
            lhs: z.dims().to_vec(),
            rhs: bias.dims().to_vec(),
        });
    }
    let zc = z.contiguous();
    let bc = bias.contiguous();
    let zs = zc.as_slice().expect("contiguous");
    let bs = bc.as_slice().expect("contiguous");
    let mut out = vec![0.0f32; zs.len()];
    backend::timed(KernelClass::Elementwise, || {
        backend::kernels().bias_act(zs, bs, &mut out, act)
    });
    Tensor::from_vec(out, z.shape().clone())
}

/// `d act / d z` evaluated from the activation *output* `y`, matching the
/// composed backward expressions bit for bit (`y*(1-y)` for sigmoid,
/// `1-y²` for tanh, ones for identity).
pub fn act_grad(y: &Tensor, act: Activation) -> Tensor {
    match act {
        Activation::Identity => Tensor::ones(y.shape().clone()),
        Activation::Sigmoid => map(y, |e| e * (1.0 - e)),
        Activation::Tanh => map(y, |e| 1.0 - e * e),
    }
}

/// Fused GRU blend `u⊙h + (1−u)⊙c` over equal shapes.
pub fn gru_blend(u: &Tensor, h: &Tensor, c: &Tensor) -> Result<Tensor> {
    crate::ops::check_same_shape("gru_blend", u, h)?;
    crate::ops::check_same_shape("gru_blend", u, c)?;
    let (uc, hc, cc) = (u.contiguous(), h.contiguous(), c.contiguous());
    let us = uc.as_slice().expect("contiguous");
    let hs = hc.as_slice().expect("contiguous");
    let cs = cc.as_slice().expect("contiguous");
    let mut out = vec![0.0f32; us.len()];
    backend::timed(KernelClass::Elementwise, || {
        backend::kernels().gru_blend(us, hs, cs, &mut out)
    });
    Tensor::from_vec(out, u.shape().clone())
}

/// `1 − u` computed as the historical `neg → add_scalar` composition
/// (`(u * -1.0) + 1.0` per element) — the GRU blend backward needs it.
pub fn one_minus(u: &Tensor) -> Tensor {
    #[allow(clippy::neg_multiply)]
    map(u, |e| (e * -1.0) + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops as t;

    fn rand(dims: impl Into<crate::Shape>, seed: u64) -> Tensor {
        let mut rng = crate::random::rng_from_seed(seed);
        crate::random::uniform(dims, -2.0, 2.0, &mut rng)
    }

    #[test]
    fn bias_act_matches_composed_ops_bitwise() {
        let z = rand([3, 5, 4], 1);
        let b = rand([4], 2);
        for (act, composed) in [
            (Activation::Identity, t::add(&z, &b).unwrap()),
            (Activation::Sigmoid, t::sigmoid(&t::add(&z, &b).unwrap())),
            (Activation::Tanh, t::tanh(&t::add(&z, &b).unwrap())),
        ] {
            let fused = bias_act(&z, &b, act).unwrap();
            assert_eq!(fused.dims(), composed.dims());
            let fb: Vec<u32> = fused.to_vec().iter().map(|x| x.to_bits()).collect();
            let cb: Vec<u32> = composed.to_vec().iter().map(|x| x.to_bits()).collect();
            assert_eq!(fb, cb, "{act:?}");
        }
    }

    #[test]
    fn gru_blend_matches_composed_ops_bitwise() {
        let u = t::sigmoid(&rand([2, 3, 4], 3));
        let h = rand([2, 3, 4], 4);
        let c = t::tanh(&rand([2, 3, 4], 5));
        let fused = gru_blend(&u, &h, &c).unwrap();
        let uh = t::mul(&u, &h).unwrap();
        let omu = t::add_scalar(&t::mul_scalar(&u, -1.0), 1.0);
        let composed = t::add(&uh, &t::mul(&omu, &c).unwrap()).unwrap();
        let fb: Vec<u32> = fused.to_vec().iter().map(|x| x.to_bits()).collect();
        let cb: Vec<u32> = composed.to_vec().iter().map(|x| x.to_bits()).collect();
        assert_eq!(fb, cb);
        // The backward helper matches the composed 1-u too.
        let ob: Vec<u32> = one_minus(&u).to_vec().iter().map(|x| x.to_bits()).collect();
        let cb2: Vec<u32> = omu.to_vec().iter().map(|x| x.to_bits()).collect();
        assert_eq!(ob, cb2);
    }

    #[test]
    fn bias_act_rejects_mismatched_bias() {
        let z = Tensor::ones([2, 3]);
        assert!(bias_act(&z, &Tensor::ones([4]), Activation::Sigmoid).is_err());
        assert!(bias_act(&z, &Tensor::ones([2, 3]), Activation::Sigmoid).is_err());
    }

    #[test]
    fn act_grad_matches_backward_expressions() {
        let y = t::sigmoid(&rand([7], 6));
        let one_minus_y = t::map(&y, |e| 1.0 - e);
        let composed = t::mul(&y, &one_minus_y).unwrap();
        assert_eq!(
            act_grad(&y, Activation::Sigmoid).to_vec(),
            composed.to_vec()
        );
        let yt = t::tanh(&rand([7], 7));
        let composed_t = t::map(&yt, |e| 1.0 - e * e);
        assert_eq!(
            act_grad(&yt, Activation::Tanh).to_vec(),
            composed_t.to_vec()
        );
        assert!(act_grad(&y, Activation::Identity)
            .to_vec()
            .iter()
            .all(|&v| v == 1.0));
    }
}
