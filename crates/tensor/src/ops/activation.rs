//! Activation functions used by the ST-GNN model zoo.

use crate::ops::map;
use crate::{Result, Tensor, TensorError};

/// Scalar logistic sigmoid, numerically stable in both tails. The single
/// definition both the [`sigmoid`] map and the fused backend kernels
/// evaluate, so composed and fused paths agree bitwise.
#[inline]
pub(crate) fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Logistic sigmoid, numerically stable in both tails.
pub fn sigmoid(t: &Tensor) -> Tensor {
    map(t, sigmoid_scalar)
}

/// Hyperbolic tangent.
pub fn tanh(t: &Tensor) -> Tensor {
    map(t, f32::tanh)
}

/// Rectified linear unit.
pub fn relu(t: &Tensor) -> Tensor {
    map(t, |x| x.max(0.0))
}

/// GELU (tanh approximation), used by the transformer blocks.
pub fn gelu(t: &Tensor) -> Tensor {
    map(t, |x| {
        0.5 * x * (1.0 + (0.797_884_6 * (x + 0.044715 * x * x * x)).tanh())
    })
}

/// Softmax along the last dimension (max-subtracted for stability).
pub fn softmax_last(t: &Tensor) -> Result<Tensor> {
    if t.rank() == 0 {
        return Err(TensorError::Invalid {
            op: "softmax_last",
            msg: "rank-0 tensor".into(),
        });
    }
    let last = t.dim(t.rank() - 1);
    let mut v = t.to_vec();
    for row in v.chunks_mut(last) {
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for x in row.iter_mut() {
            *x = (*x - mx).exp();
            z += *x;
        }
        for x in row.iter_mut() {
            *x /= z;
        }
    }
    Tensor::from_vec(v, t.shape().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        let t = Tensor::from_slice(&[-100.0, 0.0, 100.0]);
        let s = sigmoid(&t).to_vec();
        assert!(s[0] >= 0.0 && s[0] < 1e-6);
        assert!((s[1] - 0.5).abs() < 1e-6);
        assert!(s[2] <= 1.0 && s[2] > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_and_relu() {
        let t = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&t).to_vec(), vec![0.0, 0.0, 2.0]);
        let th = tanh(&t).to_vec();
        assert!((th[0] + 0.7615942).abs() < 1e-5);
    }

    #[test]
    fn gelu_is_monotone_near_zero() {
        let t = Tensor::from_slice(&[-1.0, 0.0, 1.0]);
        let g = gelu(&t).to_vec();
        assert!(g[0] < g[1] && g[1] < g[2]);
        assert!(g[1].abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], [2, 3]).unwrap();
        let s = softmax_last(&t).unwrap();
        let v = s.to_vec();
        let r0: f32 = v[..3].iter().sum();
        let r1: f32 = v[3..].iter().sum();
        assert!((r0 - 1.0).abs() < 1e-5);
        assert!((r1 - 1.0).abs() < 1e-5, "stable under large inputs");
        assert!(v[2] > v[1] && v[1] > v[0]);
    }
}
