//! Reductions: sum / mean / max / min / std, full and per-axis.

use crate::{par, Result, Tensor, TensorError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sum of all elements.
pub fn sum_all(t: &Tensor) -> f32 {
    t.to_vec().iter().sum()
}

/// Mean of all elements (0 for empty tensors).
pub fn mean_all(t: &Tensor) -> f32 {
    let n = t.numel();
    if n == 0 {
        0.0
    } else {
        sum_all(t) / n as f32
    }
}

/// Maximum element.
pub fn max_all(t: &Tensor) -> f32 {
    t.to_vec().into_iter().fold(f32::NEG_INFINITY, f32::max)
}

/// Minimum element.
pub fn min_all(t: &Tensor) -> f32 {
    t.to_vec().into_iter().fold(f32::INFINITY, f32::min)
}

/// Elements per [`sum_abs`] partial; fixed (rather than derived from the
/// thread count) so the f64 accumulation order — and therefore the result
/// bit pattern — is identical no matter how many threads run the chunks.
const SUM_ABS_CHUNK: usize = 1 << 16;

/// Fused Σ|tᵢ| accumulated in f64 — the validation-path reduction.
///
/// Replaces the `abs(t).to_vec().iter().sum()` pattern, which materializes
/// an |t|-sized tensor plus a Vec copy per batch; this walks the data once
/// with no allocation beyond the per-chunk partials. Parallel via
/// [`par::parallel_chunks`] over fixed-size chunks whose partials are
/// combined in chunk order.
pub fn sum_abs(t: &Tensor) -> f64 {
    let src = t.contiguous();
    let s = src.as_slice().expect("contiguous");
    let chunks = s.len().div_ceil(SUM_ABS_CHUNK).max(1);
    let partials: Vec<AtomicU64> = (0..chunks).map(|_| AtomicU64::new(0)).collect();
    par::parallel_chunks(chunks, s.len(), |_, lo, hi| {
        for c in lo..hi {
            let span = &s[c * SUM_ABS_CHUNK..((c + 1) * SUM_ABS_CHUNK).min(s.len())];
            let acc: f64 = span.iter().map(|&v| (v as f64).abs()).sum();
            partials[c].store(acc.to_bits(), Ordering::Relaxed);
        }
    });
    partials
        .iter()
        .map(|p| f64::from_bits(p.load(Ordering::Relaxed)))
        .sum()
}

/// Population standard deviation of all elements.
pub fn std_all(t: &Tensor) -> f32 {
    let v = t.to_vec();
    if v.is_empty() {
        return 0.0;
    }
    let mean = v.iter().sum::<f32>() / v.len() as f32;
    (v.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / v.len() as f32).sqrt()
}

/// Reduce along `axis` with a binary accumulator, producing a tensor whose
/// `axis` has been removed.
fn reduce_axis(t: &Tensor, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
    if axis >= t.rank() {
        return Err(TensorError::Invalid {
            op: "reduce_axis",
            msg: format!("axis {axis} out of range for rank {}", t.rank()),
        });
    }
    let dims = t.dims().to_vec();
    let axis_len = dims[axis];
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    let src = t.contiguous();
    let s = src.as_slice().expect("contiguous");
    let mut out = vec![init; outer * inner];
    for o in 0..outer {
        for a in 0..axis_len {
            let base = (o * axis_len + a) * inner;
            let obase = o * inner;
            for i in 0..inner {
                out[obase + i] = f(out[obase + i], s[base + i]);
            }
        }
    }
    let mut out_dims = dims;
    out_dims.remove(axis);
    Tensor::from_vec(out, out_dims)
}

/// Sum along `axis` (axis removed from the result shape).
pub fn sum_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    reduce_axis(t, axis, 0.0, |a, b| a + b)
}

/// Mean along `axis`.
pub fn mean_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    let n = t.dim(axis) as f32;
    let s = sum_axis(t, axis)?;
    Ok(crate::ops::mul_scalar(&s, 1.0 / n))
}

/// Max along `axis`.
pub fn max_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    reduce_axis(t, axis, f32::NEG_INFINITY, f32::max)
}

/// Index of the maximum along the last axis, returned as usize rows.
pub fn argmax_last(t: &Tensor) -> Result<Vec<usize>> {
    if t.rank() == 0 {
        return Err(TensorError::Invalid {
            op: "argmax_last",
            msg: "rank-0 tensor".into(),
        });
    }
    let last = t.dim(t.rank() - 1);
    let v = t.to_vec();
    Ok(v.chunks(last)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_reductions() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sum_all(&t), 10.0);
        assert_eq!(mean_all(&t), 2.5);
        assert_eq!(max_all(&t), 4.0);
        assert_eq!(min_all(&t), 1.0);
        let std = std_all(&t);
        assert!((std - 1.118034).abs() < 1e-5);
    }

    #[test]
    fn sum_abs_matches_scalar_path_and_handles_views() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(sum_abs(&t), 10.0);
        // Empty tensors sum to zero.
        assert_eq!(sum_abs(&Tensor::from_vec(vec![], [0]).unwrap()), 0.0);
        // Non-contiguous views are handled via a contiguous copy.
        let m = Tensor::from_vec(vec![1.0, -1.0, 2.0, -2.0], [2, 2]).unwrap();
        assert_eq!(sum_abs(&m.t().unwrap()), 6.0);
        // Large input exercises the parallel chunked path and must agree
        // bit-for-bit with the sequential reference accumulation.
        let n = (super::SUM_ABS_CHUNK * 3) + 17;
        let vals: Vec<f32> = (0..n).map(|i| ((i % 255) as f32 - 127.0) * 0.37).collect();
        let big = Tensor::from_vec(vals.clone(), [n]).unwrap();
        let reference: f64 = vals
            .chunks(super::SUM_ABS_CHUNK)
            .map(|c| c.iter().map(|&v| (v as f64).abs()).sum::<f64>())
            .sum();
        assert_eq!(sum_abs(&big), reference);
    }

    #[test]
    fn sum_axis_0_and_1() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        assert_eq!(sum_axis(&t, 0).unwrap().to_vec(), vec![3.0, 5.0, 7.0]);
        assert_eq!(sum_axis(&t, 1).unwrap().to_vec(), vec![3.0, 12.0]);
    }

    #[test]
    fn mean_axis_middle() {
        let t = Tensor::arange(24).reshape([2, 3, 4]).unwrap();
        let m = mean_axis(&t, 1).unwrap();
        assert_eq!(m.dims(), &[2, 4]);
        // mean over entries (0,4,8)=4, (1,5,9)=5, ...
        assert_eq!(m.to_vec()[..4], [4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn max_axis_works() {
        let t = Tensor::from_vec(vec![1.0, 9.0, -3.0, 4.0], [2, 2]).unwrap();
        assert_eq!(max_axis(&t, 0).unwrap().to_vec(), vec![1.0, 9.0]);
        assert_eq!(max_axis(&t, 1).unwrap().to_vec(), vec![9.0, 4.0]);
    }

    #[test]
    fn argmax_rows() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2], [2, 2]).unwrap();
        assert_eq!(argmax_last(&t).unwrap(), vec![1, 0]);
    }

    #[test]
    fn reductions_on_views() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        let tt = t.t().unwrap();
        assert_eq!(sum_axis(&tt, 0).unwrap().to_vec(), vec![3.0, 12.0]);
    }
}
