//! Tensor kernels: elementwise arithmetic, matmul, reductions, activations,
//! and concatenation. All functions are pure (they return new tensors);
//! in-place variants live on [`crate::Tensor`].

pub mod activation;
pub mod concat;
pub mod elementwise;
pub mod fused;
pub mod matmul;
pub mod reduce;

pub use activation::*;
pub use concat::*;
pub use elementwise::*;
pub use matmul::*;
pub use reduce::*;
