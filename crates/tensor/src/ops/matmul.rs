//! Dense matrix multiplication entry points (2-D and batched 3-D).
//!
//! Shape validation and tensor plumbing live here; the raw loops are
//! dispatched through the active [`crate::backend::Kernels`] backend —
//! the naive i-k-j reference or the tiled default, bit-identical either
//! way. Small products stay on the sequential path inside the kernels to
//! avoid thread overhead.

use crate::backend::{self, KernelClass};
use crate::{Result, Tensor, TensorError};

/// `C[m,n] = A[m,k] @ B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::Invalid {
            op: "matmul",
            msg: format!("requires rank-2 inputs, got {} and {}", a.rank(), b.rank()),
        });
    }
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let ac = a.contiguous();
    let bc = b.contiguous();
    let av = ac.as_slice().expect("contiguous");
    let bv = bc.as_slice().expect("contiguous");
    let mut out = vec![0.0f32; m * n];
    backend::timed(KernelClass::Gemm, || {
        backend::kernels().matmul(av, bv, &mut out, m, k, n)
    });
    Tensor::from_vec(out, [m, n])
}

/// Batched matmul: `C[b,m,n] = A[b,m,k] @ B[b,k,n]`.
/// `B` may also be rank-2 `[k,n]`, shared across the batch.
pub fn bmm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 3 {
        return Err(TensorError::Invalid {
            op: "bmm",
            msg: format!("lhs must be rank-3, got {}", a.rank()),
        });
    }
    let (bs, m, k) = (a.dim(0), a.dim(1), a.dim(2));
    let shared_rhs = b.rank() == 2;
    let (k2, n) = if shared_rhs {
        (b.dim(0), b.dim(1))
    } else if b.rank() == 3 && b.dim(0) == bs {
        (b.dim(1), b.dim(2))
    } else {
        return Err(TensorError::ShapeMismatch {
            op: "bmm",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    };
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "bmm",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let ac = a.contiguous();
    let bc = b.contiguous();
    let av = ac.as_slice().expect("contiguous");
    let bv = bc.as_slice().expect("contiguous");
    let mut out = vec![0.0f32; bs * m * n];
    backend::timed(KernelClass::Gemm, || {
        backend::kernels().bmm(av, bv, &mut out, bs, m, k, n, shared_rhs)
    });
    Tensor::from_vec(out, [bs, m, n])
}

/// `y[m] = A[m,k] @ x[k]` — matrix–vector product.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || x.rank() != 1 {
        return Err(TensorError::Invalid {
            op: "matvec",
            msg: format!("need [m,k] @ [k], got {:?} @ {:?}", a.dims(), x.dims()),
        });
    }
    let out = matmul(a, &x.reshape([x.dim(0), 1])?)?;
    out.reshape([a.dim(0)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matmul_exact() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_noop() {
        let a = Tensor::arange(9).reshape([3, 3]).unwrap();
        let i = Tensor::eye(3);
        assert_eq!(matmul(&a, &i).unwrap().to_vec(), a.to_vec());
        assert_eq!(matmul(&i, &a).unwrap().to_vec(), a.to_vec());
    }

    #[test]
    fn rectangular_shapes() {
        let a = Tensor::ones([3, 4]);
        let b = Tensor::ones([4, 5]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[3, 5]);
        assert!(c.to_vec().iter().all(|&x| x == 4.0));
    }

    #[test]
    fn mismatched_inner_dim_errors() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::ones([4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_on_transposed_view() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let at = a.t().unwrap(); // [3,2]
        let c = matmul(&at, &a).unwrap(); // [3,3]
                                          // Verify one entry: row0 of at = (1,4); col0 of a = (1,4) => 1+16=17.
        assert_eq!(c.at(&[0, 0]), 17.0);
        assert_eq!(c.dims(), &[3, 3]);
    }

    #[test]
    fn large_matmul_matches_naive() {
        // Exercise the parallel path against a naive reference.
        let m = 37;
        let k = 53;
        let n = 41;
        let mut rng = crate::random::rng_from_seed(3);
        let a = crate::random::uniform([m, k], -1.0, 1.0, &mut rng);
        let b = crate::random::uniform([k, n], -1.0, 1.0, &mut rng);
        let c = matmul(&a, &b).unwrap();
        let (av, bv) = (a.to_vec(), b.to_vec());
        for i in (0..m).step_by(7) {
            for j in (0..n).step_by(5) {
                let mut s = 0.0;
                for l in 0..k {
                    s += av[i * k + l] * bv[l * n + j];
                }
                assert!((c.at(&[i, j]) - s).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn nan_and_inf_propagate_through_matmul() {
        // Regression: the old kernel skipped `al == 0.0` multiplicands, so
        // a zero in A silently swallowed a NaN/Inf in B (`0 × NaN` never
        // landed). IEEE semantics must hold on the public op.
        let a = Tensor::from_vec(vec![0.0, 0.0], [1, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 1.0, 1.0], [2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap().to_vec();
        assert!(c[0].is_nan(), "0 × NaN must produce NaN");
        assert!(c[1].is_nan(), "0 × Inf must produce NaN");
        // Batched path shares the fix.
        let ab = Tensor::from_vec(vec![0.0, 0.0], [1, 1, 2]).unwrap();
        let cb = bmm(&ab, &b).unwrap().to_vec();
        assert!(cb[0].is_nan() && cb[1].is_nan());
    }

    #[test]
    fn backends_agree_bitwise_on_public_ops() {
        use crate::backend::{kernels_for, BackendKind};
        let mut rng = crate::random::rng_from_seed(11);
        let a = crate::random::uniform([45, 70], -1.0, 1.0, &mut rng);
        let b = crate::random::uniform([70, 19], -1.0, 1.0, &mut rng);
        let (m, k, n) = (45, 70, 19);
        let mut r = vec![0.0f32; m * n];
        let mut t = vec![0.0f32; m * n];
        kernels_for(BackendKind::Reference).matmul(
            a.as_slice().unwrap(),
            b.as_slice().unwrap(),
            &mut r,
            m,
            k,
            n,
        );
        kernels_for(BackendKind::Tiled).matmul(
            a.as_slice().unwrap(),
            b.as_slice().unwrap(),
            &mut t,
            m,
            k,
            n,
        );
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&r), bits(&t));
    }

    #[test]
    fn bmm_with_shared_rhs() {
        let a = Tensor::ones([2, 3, 4]);
        let b = Tensor::ones([4, 5]);
        let c = bmm(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 3, 5]);
        assert!(c.to_vec().iter().all(|&x| x == 4.0));
    }

    #[test]
    fn bmm_per_batch_rhs() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], [2, 2, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], [2, 2, 2]).unwrap();
        let c = bmm(&a, &b).unwrap();
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 10.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let x = Tensor::from_slice(&[1.0, -1.0]);
        assert_eq!(matvec(&a, &x).unwrap().to_vec(), vec![-1.0, -1.0]);
    }
}
