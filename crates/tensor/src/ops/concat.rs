//! Concatenation, stacking, and splitting.

use crate::{Result, Tensor, TensorError};

/// Concatenate tensors along `dim`. All other dimensions must match.
pub fn concat(tensors: &[&Tensor], dim: usize) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::Invalid {
            op: "concat",
            msg: "empty input list".into(),
        });
    }
    let rank = tensors[0].rank();
    if dim >= rank {
        return Err(TensorError::Invalid {
            op: "concat",
            msg: format!("dim {dim} out of range for rank {rank}"),
        });
    }
    let mut cat_len = 0usize;
    for t in tensors {
        if t.rank() != rank {
            return Err(TensorError::ShapeMismatch {
                op: "concat",
                lhs: tensors[0].dims().to_vec(),
                rhs: t.dims().to_vec(),
            });
        }
        for d in 0..rank {
            if d != dim && t.dim(d) != tensors[0].dim(d) {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: tensors[0].dims().to_vec(),
                    rhs: t.dims().to_vec(),
                });
            }
        }
        cat_len += t.dim(dim);
    }
    let mut out_dims = tensors[0].dims().to_vec();
    out_dims[dim] = cat_len;

    let outer: usize = out_dims[..dim].iter().product();
    let inner: usize = out_dims[dim + 1..].iter().product();
    let mut out = vec![0.0f32; outer * cat_len * inner];
    // Copy per outer-slab, advancing a cursor through the concat axis.
    let parts: Vec<Vec<f32>> = tensors.iter().map(|t| t.to_vec()).collect();
    for o in 0..outer {
        let mut cursor = 0usize;
        for (t, part) in tensors.iter().zip(&parts) {
            let len = t.dim(dim) * inner;
            let src = &part[o * len..(o + 1) * len];
            let dst_base = o * cat_len * inner + cursor * inner;
            out[dst_base..dst_base + len].copy_from_slice(src);
            cursor += t.dim(dim);
        }
    }
    Tensor::from_vec(out, out_dims)
}

/// Stack equal-shaped tensors along a new leading dimension.
pub fn stack0(tensors: &[&Tensor]) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::Invalid {
            op: "stack0",
            msg: "empty input list".into(),
        });
    }
    let shape = tensors[0].shape().clone();
    let mut out = Vec::with_capacity(tensors.len() * shape.numel());
    for t in tensors {
        if !t.shape().same_as(&shape) {
            return Err(TensorError::ShapeMismatch {
                op: "stack0",
                lhs: shape.dims().to_vec(),
                rhs: t.dims().to_vec(),
            });
        }
        out.extend_from_slice(&t.to_vec());
    }
    let mut dims = vec![tensors.len()];
    dims.extend_from_slice(shape.dims());
    Tensor::from_vec(out, dims)
}

/// Split a tensor into `n` equal chunks along `dim` (dim size must divide).
pub fn chunk(t: &Tensor, n: usize, dim: usize) -> Result<Vec<Tensor>> {
    if n == 0 || dim >= t.rank() || !t.dim(dim).is_multiple_of(n) {
        return Err(TensorError::Invalid {
            op: "chunk",
            msg: format!("cannot split dim {dim} of {:?} into {n} chunks", t.dims()),
        });
    }
    let step = t.dim(dim) / n;
    (0..n).map(|i| t.narrow(dim, i * step, step)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_dim0() {
        let a = Tensor::arange(4).reshape([2, 2]).unwrap();
        let b = Tensor::from_vec(vec![9.0, 9.0], [1, 2]).unwrap();
        let c = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.to_vec(), vec![0.0, 1.0, 2.0, 3.0, 9.0, 9.0]);
    }

    #[test]
    fn concat_dim1() {
        let a = Tensor::arange(4).reshape([2, 2]).unwrap();
        let b = Tensor::from_vec(vec![8.0, 9.0], [2, 1]).unwrap();
        let c = concat(&[&a, &b], 1).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![0.0, 1.0, 8.0, 2.0, 3.0, 9.0]);
    }

    #[test]
    fn concat_last_dim_rank3() {
        let a = Tensor::ones([2, 2, 1]);
        let b = Tensor::zeros([2, 2, 2]);
        let c = concat(&[&a, &b], 2).unwrap();
        assert_eq!(c.dims(), &[2, 2, 3]);
        assert_eq!(c.to_vec()[..3], [1.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_shape_mismatch_errors() {
        let a = Tensor::ones([2, 2]);
        let b = Tensor::ones([3, 3]);
        assert!(concat(&[&a, &b], 0).is_err());
    }

    #[test]
    fn stack_makes_new_dim() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        let s = stack0(&[&a, &b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn chunk_roundtrips_concat() {
        let t = Tensor::arange(12).reshape([2, 6]).unwrap();
        let parts = chunk(&t, 3, 1).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].dims(), &[2, 2]);
        let refs: Vec<&Tensor> = parts.iter().collect();
        let rt = concat(&refs, 1).unwrap();
        assert_eq!(rt.to_vec(), t.to_vec());
    }

    #[test]
    fn chunk_views_share_storage() {
        let t = Tensor::arange(8).reshape([4, 2]).unwrap();
        let parts = chunk(&t, 2, 0).unwrap();
        assert!(parts[0].shares_storage(&t));
        assert!(parts[1].shares_storage(&t));
    }
}
