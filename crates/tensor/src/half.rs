//! Minimal IEEE-754 binary16 conversion.
//!
//! The out-of-core chunk codecs (`st_data::storage`) and the wire codecs
//! (`st_dist::wire`) both quantize f32 payloads to half precision. The
//! container has no `half` crate, so the two conversions live here in the
//! common tensor substrate: straightforward, deterministic, round-to-nearest-
//! even on encode — no table lookups, no platform intrinsics, so results are
//! bit-identical everywhere.

/// Convert an `f32` to IEEE binary16 bits (round-to-nearest-even).
///
/// Out-of-range magnitudes saturate to ±infinity; NaN payload bits collapse
/// to a canonical quiet NaN.
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        return if mant == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00
        };
    }
    // Re-bias 127 -> 15.
    let unbiased = exp - 127;
    if unbiased >= 16 {
        // Overflow: saturate to infinity.
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        // Normal half. 13 mantissa bits are dropped; round to nearest even.
        let mut out = (((unbiased + 15) as u32) << 10) | (mant >> 13);
        let round_bits = mant & 0x1fff;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (out & 1) == 1) {
            out += 1; // may carry into the exponent — that is correct rounding
        }
        return sign | out as u16;
    }
    if unbiased >= -25 {
        // Subnormal half: shift the implicit leading 1 into the mantissa.
        let full = mant | 0x0080_0000;
        let shift = (-14 - unbiased + 13) as u32;
        let mut out = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let half_ulp = 1u32 << (shift - 1);
        if rem > half_ulp || (rem == half_ulp && (out & 1) == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    // Underflow to signed zero.
    sign
}

/// Convert IEEE binary16 bits back to `f32` (exact — every half value is
/// representable in single precision).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal half: value = m · 2^-24. Renormalize around the
            // highest set bit h: exp32 = 127 + (h - 24), mantissa shifts
            // up into the 23-bit field.
            let h = 31 - m.leading_zeros();
            let exp32 = 103 + h;
            let mant32 = (m << (23 - h)) & 0x007f_ffff;
            sign | (exp32 << 23) | mant32
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, _) => sign | 0x7fc0_0000,
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Round-trip an `f32` through binary16 (the value a half-precision payload
/// decodes to).
pub fn f16_round_trip(v: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip_bitwise() {
        for v in [
            0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 0.25, -65504.0, 65504.0,
        ] {
            assert_eq!(f16_round_trip(v).to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn relative_error_is_half_precision() {
        // Normal range: relative error bounded by 2^-11.
        for i in 1..2000 {
            let v = i as f32 * 0.037 - 31.0;
            if v == 0.0 {
                continue;
            }
            let r = f16_round_trip(v);
            assert!(
                ((r - v) / v).abs() <= 1.0 / 2048.0,
                "{v} -> {r} rel err too big"
            );
        }
    }

    #[test]
    fn saturation_and_specials() {
        assert_eq!(f16_round_trip(1e9), f32::INFINITY);
        assert_eq!(f16_round_trip(-1e9), f32::NEG_INFINITY);
        assert_eq!(f16_round_trip(f32::INFINITY), f32::INFINITY);
        assert!(f16_round_trip(f32::NAN).is_nan());
        // Tiny values flush through the subnormal range, not straight to 0.
        let sub = f16_round_trip(1e-5);
        assert!(sub > 0.0 && (sub - 1e-5).abs() / 1e-5 < 0.05);
        assert_eq!(f16_round_trip(1e-12), 0.0);
    }

    #[test]
    fn round_to_nearest_even_carries() {
        // 2049.0 is exactly between half-representable 2048 and 2050; ties
        // go to even (2048). 2051 rounds up to 2052.
        assert_eq!(f16_round_trip(2049.0), 2048.0);
        assert_eq!(f16_round_trip(2051.0), 2052.0);
    }
}
