//! Reference-counted flat buffers backing tensors.
//!
//! `Storage` wraps `Arc<Vec<f32>>` so tensor clones and views are O(1) and
//! share memory — the property index-batching relies on: every spatiotemporal
//! snapshot aliases the single standardized data array.

use std::sync::Arc;

/// A shared flat buffer of `f32` elements.
#[derive(Debug, Clone)]
pub struct Storage {
    data: Arc<Vec<f32>>,
}

impl Storage {
    /// Allocate a zero-filled buffer of `len` elements.
    pub fn zeros(len: usize) -> Self {
        Storage {
            data: Arc::new(vec![0.0; len]),
        }
    }

    /// Wrap an existing vector without copying.
    pub fn from_vec(v: Vec<f32>) -> Self {
        Storage { data: Arc::new(v) }
    }

    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the whole buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access with copy-on-write: if other tensors share this
    /// storage the buffer is cloned first, so views are never invalidated.
    pub fn make_mut(&mut self) -> &mut [f32] {
        let v: &mut Vec<f32> = Arc::make_mut(&mut self.data);
        v.as_mut_slice()
    }

    /// True when `other` aliases the same allocation — used by tests to
    /// assert that index-batching snapshots are zero-copy.
    pub fn ptr_eq(&self, other: &Storage) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Number of strong references to the underlying allocation.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let s = Storage::zeros(5);
        assert_eq!(s.len(), 5);
        assert!(s.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn clone_shares_allocation() {
        let a = Storage::from_vec(vec![1.0, 2.0]);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(a.ref_count(), 2);
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let a = Storage::from_vec(vec![1.0, 2.0]);
        let mut b = a.clone();
        b.make_mut()[0] = 9.0;
        // `a` must be untouched and the two no longer alias.
        assert_eq!(a.as_slice()[0], 1.0);
        assert_eq!(b.as_slice()[0], 9.0);
        assert!(!a.ptr_eq(&b));
    }

    #[test]
    fn make_mut_unique_does_not_copy() {
        let mut a = Storage::from_vec(vec![1.0, 2.0]);
        let ptr = a.as_slice().as_ptr();
        a.make_mut()[1] = 5.0;
        assert_eq!(a.as_slice().as_ptr(), ptr);
    }
}
