//! Seeded random tensor constructors and weight initializers.
//!
//! Everything is driven by an explicit [`rand::rngs::StdRng`] so distributed
//! replicas can be initialized identically from a shared seed — the same
//! trick distributed-index-batching uses for communication-free global
//! shuffling.

use crate::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform samples in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.numel())
        .map(|_| rng.gen_range(lo..hi))
        .collect::<Vec<f32>>();
    Tensor::from_vec(data, shape).expect("matching numel")
}

/// Standard-normal samples scaled by `std` and shifted by `mean`
/// (Box–Muller; avoids needing rand_distr).
pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(data, shape).expect("matching numel")
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform([fan_in, fan_out], -bound, bound, rng)
}

/// Deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A seeded Fisher–Yates permutation of `0..n`.
///
/// Every worker that calls this with the same `(seed, epoch)` derives the
/// same global permutation — the basis of communication-free global shuffle.
pub fn permutation(n: usize, seed: u64, epoch: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bounds_and_determinism() {
        let mut r1 = rng_from_seed(7);
        let mut r2 = rng_from_seed(7);
        let a = uniform([100], -1.0, 1.0, &mut r1);
        let b = uniform([100], -1.0, 1.0, &mut r2);
        assert_eq!(a.to_vec(), b.to_vec());
        assert!(a.to_vec().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = rng_from_seed(42);
        let t = normal([10_000], 2.0, 0.5, &mut rng);
        let v = t.to_vec();
        let mean = v.iter().sum::<f32>() / v.len() as f32;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / v.len() as f32;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_bound() {
        let mut rng = rng_from_seed(1);
        let w = xavier_uniform(64, 32, &mut rng);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(w.to_vec().iter().all(|&x| x.abs() <= bound));
        assert_eq!(w.dims(), &[64, 32]);
    }

    #[test]
    fn permutation_is_a_bijection_and_seeded() {
        let p1 = permutation(100, 9, 3);
        let p2 = permutation(100, 9, 3);
        let p3 = permutation(100, 9, 4);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3, "different epochs must reshuffle");
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
