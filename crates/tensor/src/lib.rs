//! # st-tensor
//!
//! Dense, strided, CPU tensor library used as the numerical substrate for the
//! PGT-I reproduction. It plays the role NumPy + PyTorch tensors play in the
//! original paper: in particular it supports **zero-copy views** (`narrow`,
//! `select`, `permute`), which are the core mechanism behind index-batching —
//! a spatiotemporal snapshot is a *view* into the single standardized data
//! array, never a copy.
//!
//! Design notes
//! - Element type is `f32` (model math). Byte accounting for the paper's
//!   float64 datasets is handled by `st-device` pools, not by this crate.
//! - Storage is `Arc<Vec<f32>>`; clones and views are O(1). Mutating methods
//!   (`fill_`, `add_scaled_`, ...) use copy-on-write semantics via
//!   [`Tensor::make_mut_contiguous`].
//! - Large elementwise ops and matmuls are parallelized across a scoped
//!   thread pool (`par` module, crossbeam), following the data-parallel
//!   patterns recommended for HPC Rust.

pub mod backend;
pub mod half;
pub mod ops;
pub mod par;
pub mod random;
pub mod shape;
pub mod storage;
pub mod tensor;

pub use shape::Shape;
pub use storage::Storage;
pub use tensor::Tensor;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Shapes are incompatible for the requested operation.
    ShapeMismatch {
        op: &'static str,
        lhs: Vec<usize>,
        rhs: Vec<usize>,
    },
    /// An index or range fell outside the tensor bounds.
    OutOfBounds {
        op: &'static str,
        index: usize,
        bound: usize,
    },
    /// The operation requires a contiguous tensor.
    NotContiguous { op: &'static str },
    /// Invalid argument (dimension out of range, zero-size dim, ...).
    Invalid { op: &'static str, msg: String },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: shape mismatch {lhs:?} vs {rhs:?}")
            }
            TensorError::OutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds ({bound})")
            }
            TensorError::NotContiguous { op } => write!(f, "{op}: tensor is not contiguous"),
            TensorError::Invalid { op, msg } => write!(f, "{op}: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
