//! Pluggable compute backends: the [`Kernels`] trait and its two
//! implementations, [`Reference`] (the original naive loops) and [`Tiled`]
//! (cache-blocked, register-tiled, packed-panel kernels).
//!
//! Every dense hot loop in the workspace — trainer, the distributed step
//! engine, `st-serve` inference, and the benches — bottoms out in the four
//! kernel families dispatched here: GEMM (`matmul`), batched GEMM (`bmm`),
//! sparse×dense (`spmm`, called back from `st-graph`'s CSR), and the fused
//! elementwise kernels backing the DCRNN gate path.
//!
//! # Bitwise equality contract
//!
//! Both backends produce **bit-identical** `f32` outputs. The tiled GEMM
//! tiles only the `i`/`j` (row/column) loops; the `k` accumulation for each
//! output element stays sequential and in ascending order, in a plain
//! `acc += a * b` form (no FMA, no pairwise reassociation). Rust does not
//! contract float expressions by default, so the rounding sequence of every
//! output element is exactly the reference kernel's. This is what lets the
//! engine's golden tests pin train-loss *bits* while the backend underneath
//! is swapped freely. The proptest suite (`tests/proptests_kernels.rs`)
//! pins the contract across ragged shapes; DESIGN.md §8 documents the
//! reasoning.
//!
//! # Selection
//!
//! The active backend is a process-wide choice: [`set_backend`] /
//! [`active_backend`], initialized once from the `ST_BACKEND` environment
//! variable (`"tiled"` — the default — or `"reference"`). A global is the
//! right scope because worker ranks, serve shards, and gradient bucketing
//! all run the same model math on their own threads and must agree on the
//! kernels; per-call structs ([`Reference`], [`Tiled`]) remain available
//! for side-by-side comparison (benches, proptests).

use crate::ops::activation::sigmoid_scalar;
use crate::par;
use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// Which [`Kernels`] implementation the process-wide dispatch uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The original naive loops (i-k-j GEMM, per-op elementwise passes).
    Reference,
    /// Cache-blocked, register-tiled kernels (the default).
    Tiled,
}

impl BackendKind {
    /// Parse a backend name as accepted by the `ST_BACKEND` environment
    /// variable. Unknown or empty names mean "no override".
    pub fn parse(name: &str) -> Option<BackendKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "reference" | "ref" | "naive" => Some(BackendKind::Reference),
            "tiled" | "fast" => Some(BackendKind::Tiled),
            _ => None,
        }
    }

    /// Stable lowercase name (`"reference"` / `"tiled"`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Reference => "reference",
            BackendKind::Tiled => "tiled",
        }
    }
}

const KIND_UNSET: u8 = 0;
const KIND_REFERENCE: u8 = 1;
const KIND_TILED: u8 = 2;

static ACTIVE: AtomicU8 = AtomicU8::new(KIND_UNSET);

/// The process-wide backend every dispatching op routes through.
///
/// First call resolves `ST_BACKEND` (default [`BackendKind::Tiled`]); later
/// calls return the cached choice unless [`set_backend`] replaced it.
pub fn active_backend() -> BackendKind {
    match ACTIVE.load(Ordering::Relaxed) {
        KIND_REFERENCE => BackendKind::Reference,
        KIND_TILED => BackendKind::Tiled,
        _ => {
            let kind = std::env::var("ST_BACKEND")
                .ok()
                .as_deref()
                .and_then(BackendKind::parse)
                .unwrap_or(BackendKind::Tiled);
            set_backend(kind);
            kind
        }
    }
}

/// Select the process-wide backend (trainer configs, `ServeConfig`, and the
/// benches route their explicit knobs here). Safe to call from any thread;
/// the swap is racy only in the benign sense that in-flight ops finish on
/// the backend they started with — both produce identical bits anyway.
pub fn set_backend(kind: BackendKind) {
    let v = match kind {
        BackendKind::Reference => KIND_REFERENCE,
        BackendKind::Tiled => KIND_TILED,
    };
    ACTIVE.store(v, Ordering::Relaxed);
}

/// The [`Kernels`] implementation for `kind` as a static reference.
pub fn kernels_for(kind: BackendKind) -> &'static dyn Kernels {
    match kind {
        BackendKind::Reference => &Reference,
        BackendKind::Tiled => &Tiled,
    }
}

/// The active backend's kernels (shorthand for
/// `kernels_for(active_backend())`).
pub fn kernels() -> &'static dyn Kernels {
    kernels_for(active_backend())
}

/// Elementwise activation selector for the fused bias+activation kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation: the fused kernel degenerates to a bias add.
    Identity,
    /// Numerically-stable logistic sigmoid (the DCRNN gate nonlinearity).
    Sigmoid,
    /// Hyperbolic tangent (the DCRNN candidate nonlinearity).
    Tanh,
}

impl Activation {
    /// Scalar evaluation — the exact expression the unfused
    /// `st_tensor::ops` activation maps use, so fused and composed paths
    /// agree bitwise.
    #[inline]
    pub fn eval(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => sigmoid_scalar(x),
            Activation::Tanh => x.tanh(),
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel-time accounting
// ---------------------------------------------------------------------------

/// Kernel families tracked by the per-thread time counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// Dense matrix multiplication (matmul / bmm / matvec).
    Gemm,
    /// Sparse×dense products (CSR spmm, reported by `st-graph`).
    Spmm,
    /// Elementwise maps/zips and the fused gate kernels.
    Elementwise,
}

thread_local! {
    static KERNEL_SECS: [Cell<f64>; 3] =
        const { [Cell::new(0.0), Cell::new(0.0), Cell::new(0.0)] };
}

/// Add `secs` of wall-clock time to `class` on this thread's counters.
/// Public so sibling crates owning a kernel family (`st-graph`'s spmm) can
/// report into the same ledger.
pub fn record_kernel_secs(class: KernelClass, secs: f64) {
    KERNEL_SECS.with(|k| {
        let c = &k[class as usize];
        c.set(c.get() + secs);
    });
}

/// Cumulative `[gemm, spmm, elementwise]` kernel seconds recorded on the
/// calling thread since it started. Ops time themselves at their entry
/// point, so work farmed out to the `par` pool is charged to the thread
/// that invoked the op — each engine rank reads its own compute split.
pub fn kernel_secs() -> [f64; 3] {
    KERNEL_SECS.with(|k| [k[0].get(), k[1].get(), k[2].get()])
}

/// Time `f` and charge its wall-clock duration to `class`.
pub fn timed<R>(class: KernelClass, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    record_kernel_secs(class, start.elapsed().as_secs_f64());
    out
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// Raw-slice compute kernels a backend must provide.
///
/// Shape validation, contiguity, and tensor construction stay in
/// `st_tensor::ops`; implementations only see flat buffers. Every method
/// must honor the crate's bitwise-equality contract (see module docs).
pub trait Kernels: Sync {
    /// Backend name for reports and bench labels.
    fn name(&self) -> &'static str;

    /// `out[m,n] = a[m,k] @ b[k,n]`, `out` pre-zeroed.
    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// Batched `out[bs,m,n] = a[bs,m,k] @ b`, `out` pre-zeroed. `b` is
    /// `[bs,k,n]`, or `[k,n]` shared across the batch when `shared_rhs`.
    #[allow(clippy::too_many_arguments)]
    fn bmm(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        bs: usize,
        m: usize,
        k: usize,
        n: usize,
        shared_rhs: bool,
    );

    /// CSR sparse×dense: `out[rows,n] = S @ x[cols,n]`, `out` pre-zeroed.
    /// Row `r`'s nonzeros are `col_idx/values[row_ptr[r]..row_ptr[r+1]]`.
    #[allow(clippy::too_many_arguments)]
    fn spmm(
        &self,
        row_ptr: &[usize],
        col_idx: &[usize],
        values: &[f32],
        x: &[f32],
        out: &mut [f32],
        rows: usize,
        n: usize,
    );

    /// Fused `out[i] = act(z[i] + bias[i % bias.len()])` — the DCRNN
    /// gate tail (`dconv → add-bias → σ/tanh`) in one pass.
    fn bias_act(&self, z: &[f32], bias: &[f32], out: &mut [f32], act: Activation);

    /// Fused GRU blend `out = u⊙h + (1−u)⊙c`, elementwise over equal-length
    /// slices, replicating the composed expression
    /// `(u*h) + (((u*-1.0)+1.0)*c)` per element.
    fn gru_blend(&self, u: &[f32], h: &[f32], c: &[f32], out: &mut [f32]);
}

// ---------------------------------------------------------------------------
// Reference backend — the original naive loops
// ---------------------------------------------------------------------------

/// The seed repo's naive kernels, kept as the ground truth the tiled
/// backend is pinned against. (The historical `al == 0.0` skip is gone: it
/// suppressed NaN/Inf propagation — `0 × NaN` never landed — and, because
/// a `+0.0`-seeded accumulator can never become `-0.0` under addition,
/// removing it changes no finite output bits.)
pub struct Reference;

impl Kernels for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || n == 0 {
            return;
        }
        par::parallel_fill_chunks(out, n, m * n * k, |i, row| {
            naive_row_kernel(&a[i * k..(i + 1) * k], b, row, n);
        });
    }

    fn bmm(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        bs: usize,
        m: usize,
        k: usize,
        n: usize,
        shared_rhs: bool,
    ) {
        if bs == 0 || m == 0 || n == 0 {
            return;
        }
        par::parallel_fill_chunks(out, m * n, bs * m * n * k, |i, slab| {
            let a_i = &a[i * m * k..(i + 1) * m * k];
            let b_i = if shared_rhs {
                b
            } else {
                &b[i * k * n..(i + 1) * k * n]
            };
            for r in 0..m {
                naive_row_kernel(
                    &a_i[r * k..(r + 1) * k],
                    b_i,
                    &mut slab[r * n..(r + 1) * n],
                    n,
                );
            }
        });
    }

    fn spmm(
        &self,
        row_ptr: &[usize],
        col_idx: &[usize],
        values: &[f32],
        x: &[f32],
        out: &mut [f32],
        rows: usize,
        n: usize,
    ) {
        if rows == 0 || n == 0 {
            return;
        }
        let nnz = values.len();
        par::parallel_fill_chunks(out, n, nnz * n, |r, row_out| {
            for p in row_ptr[r]..row_ptr[r + 1] {
                let v = values[p];
                let xrow = &x[col_idx[p] * n..(col_idx[p] + 1) * n];
                for (o, &xv) in row_out.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        });
    }

    fn bias_act(&self, z: &[f32], bias: &[f32], out: &mut [f32], act: Activation) {
        // Two materializing passes, mirroring the historical composed path
        // (`add` then activation `map`) op for op.
        let nb = bias.len();
        for (i, (o, &zv)) in out.iter_mut().zip(z).enumerate() {
            *o = zv + bias[i % nb];
        }
        for o in out.iter_mut() {
            *o = act.eval(*o);
        }
    }

    fn gru_blend(&self, u: &[f32], h: &[f32], c: &[f32], out: &mut [f32]) {
        // Materialize each intermediate exactly like the historical
        // four-op composition (mul, neg, add_scalar, mul, add).
        let n = out.len();
        let mut uh = vec![0.0f32; n];
        for ((o, &uv), &hv) in uh.iter_mut().zip(u).zip(h) {
            *o = uv * hv;
        }
        let mut omu = vec![0.0f32; n];
        for (o, &uv) in omu.iter_mut().zip(u) {
            // Deliberately `* -1.0`, not negation: this mirrors the exact
            // `neg → add_scalar` composition the models used to build.
            #[allow(clippy::neg_multiply)]
            {
                *o = (uv * -1.0) + 1.0;
            }
        }
        for (((o, &uhv), &omuv), &cv) in out.iter_mut().zip(&uh).zip(&omu).zip(c) {
            *o = uhv + omuv * cv;
        }
    }
}

/// One output row of the naive i-k-j GEMM: `row += a_row @ b`.
#[inline]
fn naive_row_kernel(arow: &[f32], b: &[f32], row: &mut [f32], n: usize) {
    for (l, &al) in arow.iter().enumerate() {
        let brow = &b[l * n..(l + 1) * n];
        for (c, &bv) in row.iter_mut().zip(brow) {
            *c += al * bv;
        }
    }
}

// ---------------------------------------------------------------------------
// Tiled backend
// ---------------------------------------------------------------------------

/// Rows per register micro-tile.
pub const MR: usize = 4;
/// Columns per packed B panel (and per register micro-tile).
pub const NR: usize = 8;

/// Products smaller than this many scalar ops take the naive kernel —
/// packing overhead only pays off once the B panel is re-streamed across
/// several row blocks. Both paths are bitwise identical, so the switch is
/// purely a latency decision.
const TILE_MIN_WORK: usize = 16 * 1024;

/// Cache-blocked, register-tiled kernels with packed B panels.
///
/// GEMM walks `NR`-column panels of a packed copy of `B`; each `MR×NR`
/// micro-tile keeps its partial sums in registers across the whole `k`
/// loop, so `C` is written once instead of being re-loaded per `k` step,
/// and `B`'s traffic drops by `MR×`. The `k` loop is never split or
/// reassociated — see the module docs for the bitwise contract.
pub struct Tiled;

impl Kernels for Tiled {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 || m * n * k < TILE_MIN_WORK {
            return Reference.matmul(a, b, out, m, k, n);
        }
        let packed = pack_b(b, k, n);
        tiled_rows_parallel(a, &packed, out, m, k, n, m * n * k);
    }

    fn bmm(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        bs: usize,
        m: usize,
        k: usize,
        n: usize,
        shared_rhs: bool,
    ) {
        if bs == 0 || m == 0 || n == 0 {
            return;
        }
        let work = bs * m * n * k;
        if k == 0 || work < TILE_MIN_WORK {
            return Reference.bmm(a, b, out, bs, m, k, n, shared_rhs);
        }
        if shared_rhs {
            // Pack once, amortized across the whole batch — the seq2seq
            // unroll's projection layers all take this path.
            let packed = pack_b(b, k, n);
            par::parallel_fill_chunks(out, m * n, work, |i, slab| {
                tiled_rows(&a[i * m * k..(i + 1) * m * k], &packed, slab, m, k, n);
            });
        } else {
            par::parallel_fill_chunks(out, m * n, work, |i, slab| {
                let packed = pack_b(&b[i * k * n..(i + 1) * k * n], k, n);
                tiled_rows(&a[i * m * k..(i + 1) * m * k], &packed, slab, m, k, n);
            });
        }
    }

    fn spmm(
        &self,
        row_ptr: &[usize],
        col_idx: &[usize],
        values: &[f32],
        x: &[f32],
        out: &mut [f32],
        rows: usize,
        n: usize,
    ) {
        // CSR rows are short and irregular on road graphs; the naive
        // row-parallel loop is already the right shape for them.
        Reference.spmm(row_ptr, col_idx, values, x, out, rows, n);
    }

    fn bias_act(&self, z: &[f32], bias: &[f32], out: &mut [f32], act: Activation) {
        // One pass, row-chunked: the bias index never needs a modulo, and
        // the activation branch is hoisted out of the loop. Trailing
        // partial rows (never produced by the public op, which validates
        // `z`'s last dim against `bias`) still zip correctly — `zip`
        // truncates to the shorter side.
        let nb = bias.len().max(1);
        match act {
            Activation::Identity => {
                for (orow, zrow) in out.chunks_mut(nb).zip(z.chunks(nb)) {
                    for ((o, &zv), &bv) in orow.iter_mut().zip(zrow).zip(bias) {
                        *o = zv + bv;
                    }
                }
            }
            Activation::Sigmoid => {
                for (orow, zrow) in out.chunks_mut(nb).zip(z.chunks(nb)) {
                    for ((o, &zv), &bv) in orow.iter_mut().zip(zrow).zip(bias) {
                        *o = sigmoid_scalar(zv + bv);
                    }
                }
            }
            Activation::Tanh => {
                for (orow, zrow) in out.chunks_mut(nb).zip(z.chunks(nb)) {
                    for ((o, &zv), &bv) in orow.iter_mut().zip(zrow).zip(bias) {
                        *o = (zv + bv).tanh();
                    }
                }
            }
        }
    }

    fn gru_blend(&self, u: &[f32], h: &[f32], c: &[f32], out: &mut [f32]) {
        for (((o, &uv), &hv), &cv) in out.iter_mut().zip(u).zip(h).zip(c) {
            // `* -1.0` kept on purpose — the fused blend must replicate the
            // composed `(u*h) + (((u*-1)+1)*c)` expression bit for bit.
            #[allow(clippy::neg_multiply)]
            {
                *o = (uv * hv) + (((uv * -1.0) + 1.0) * cv);
            }
        }
    }
}

/// Pack `b[k,n]` into `NR`-column panels: panel `p` holds columns
/// `p*NR..p*NR+NR` contiguously per `k` step (`packed[(p*k + l)*NR + c] =
/// b[l*n + p*NR + c]`), zero-padded past `n`. Padded lanes are computed but
/// never stored to `out`.
fn pack_b(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; panels * k * NR];
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let base = p * k * NR;
        for l in 0..k {
            let src = &b[l * n + j0..l * n + j0 + w];
            packed[base + l * NR..base + l * NR + w].copy_from_slice(src);
        }
    }
    packed
}

/// Tiled GEMM over `out[m,n]` with `packed` panels, parallel across
/// MR-aligned row blocks.
fn tiled_rows_parallel(
    a: &[f32],
    packed: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    work: usize,
) {
    let threads = par::num_threads();
    let groups = m.div_ceil(MR);
    if threads <= 1 || work < par::par_threshold() || groups < 2 {
        return tiled_rows(a, packed, out, m, k, n);
    }
    let per = groups.div_ceil(threads.min(groups));
    crossbeam::scope(|scope| {
        for (t, slab) in out.chunks_mut(per * MR * n).enumerate() {
            scope.spawn(move |_| {
                let i0 = t * per * MR;
                let rows = slab.len() / n;
                tiled_rows(&a[i0 * k..(i0 + rows) * k], packed, slab, rows, k, n);
            });
        }
    })
    .expect("tiled matmul worker panicked");
}

/// Sequential tiled GEMM body: `out[m,n] = a[m,k] @ B` where `B` was packed
/// by [`pack_b`]. Each `MR`-row block of `A` is repacked `l`-major
/// (`apack[l*MR + r] = a[(i+r)*k + l]`, zero-padded lanes past `m`) so the
/// micro-kernel streams both operands contiguously; the pack cost is repaid
/// `n/NR` times over as the block sweeps the panels.
fn tiled_rows(a: &[f32], packed: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let panels = n.div_ceil(NR);
    let mut apack = vec![0.0f32; k * MR];
    let mut i = 0;
    while i < m {
        let rows = MR.min(m - i);
        if rows < MR {
            // Padded row lanes accumulate zeros and are never stored.
            apack.fill(0.0);
        }
        for r in 0..rows {
            let arow = &a[(i + r) * k..(i + r + 1) * k];
            for (l, &av) in arow.iter().enumerate() {
                apack[l * MR + r] = av;
            }
        }
        for p in 0..panels {
            let j0 = p * NR;
            let cols = NR.min(n - j0);
            let panel = &packed[p * k * NR..(p + 1) * k * NR];
            micro(&apack, panel, &mut out[i * n + j0..], n, rows, cols);
        }
        i += rows;
    }
}

/// The `MR×NR` register micro-kernel: partial sums stay in registers across
/// the whole `k` loop (ascending, `mul` then `add` — never FMA), then spill
/// to `out` once. Always computes the full tile; ragged edges only narrow
/// the store.
#[inline]
fn micro(apack: &[f32], panel: &[f32], out: &mut [f32], ldc: usize, rows: usize, cols: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (al, bp) in apack.chunks_exact(MR).zip(panel.chunks_exact(NR)) {
        let al: &[f32; MR] = al.try_into().expect("packed A lane");
        let bp: &[f32; NR] = bp.try_into().expect("packed B lane");
        for (accr, &av) in acc.iter_mut().zip(al) {
            for (accv, &bv) in accr.iter_mut().zip(bp) {
                *accv += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(rows) {
        out[r * ldc..r * ldc + cols].copy_from_slice(&accr[..cols]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, seed: u32) -> Vec<f32> {
        // Cheap deterministic pseudo-random values with mixed signs.
        (0..n)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((x >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn matmul_both(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut r = vec![0.0f32; m * n];
        let mut t = vec![0.0f32; m * n];
        Reference.matmul(&a, &b, &mut r, m, k, n);
        Tiled.matmul(&a, &b, &mut t, m, k, n);
        (r, t)
    }

    #[test]
    fn tiled_matmul_bitwise_equals_reference() {
        // Sizes above TILE_MIN_WORK with ragged m/k/n remainders.
        for (m, k, n) in [(64, 64, 64), (67, 33, 41), (128, 37, 9), (31, 130, 65)] {
            let (r, t) = matmul_both(m, k, n);
            for (i, (x, y)) in r.iter().zip(&t).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n}) elem {i}");
            }
        }
    }

    #[test]
    fn tiled_small_and_empty_shapes_fall_back() {
        for (m, k, n) in [(3, 4, 5), (0, 4, 5), (4, 0, 5), (4, 5, 0), (1, 1, 1)] {
            let (r, t) = matmul_both(m, k, n);
            assert_eq!(r, t, "({m},{k},{n})");
        }
    }

    #[test]
    fn tiled_bmm_matches_reference_both_rhs_modes() {
        let (bs, m, k, n) = (3, 33, 29, 17);
        let a = fill(bs * m * k, 3);
        let shared = fill(k * n, 4);
        let per = fill(bs * k * n, 5);
        for (b, shared_rhs) in [(&shared, true), (&per, false)] {
            let mut r = vec![0.0f32; bs * m * n];
            let mut t = vec![0.0f32; bs * m * n];
            Reference.bmm(&a, b, &mut r, bs, m, k, n, shared_rhs);
            Tiled.bmm(&a, b, &mut t, bs, m, k, n, shared_rhs);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&r), bits(&t), "shared_rhs={shared_rhs}");
        }
    }

    #[test]
    fn fused_kernels_match_reference() {
        let z = fill(6 * 7, 6);
        let bias = fill(7, 7);
        for act in [Activation::Identity, Activation::Sigmoid, Activation::Tanh] {
            let mut r = vec![0.0f32; z.len()];
            let mut t = vec![0.0f32; z.len()];
            Reference.bias_act(&z, &bias, &mut r, act);
            Tiled.bias_act(&z, &bias, &mut t, act);
            assert_eq!(r, t, "{act:?}");
        }
        let (u, h, c) = (fill(40, 8), fill(40, 9), fill(40, 10));
        // Squash u into (0,1) like a real gate.
        let u: Vec<f32> = u.iter().map(|&x| sigmoid_scalar(x)).collect();
        let mut r = vec![0.0f32; 40];
        let mut t = vec![0.0f32; 40];
        Reference.gru_blend(&u, &h, &c, &mut r);
        Tiled.gru_blend(&u, &h, &c, &mut t);
        assert_eq!(r, t);
    }

    #[test]
    fn backend_kind_parse_and_names() {
        assert_eq!(BackendKind::parse("tiled"), Some(BackendKind::Tiled));
        assert_eq!(BackendKind::parse(" REF "), Some(BackendKind::Reference));
        assert_eq!(BackendKind::parse("naive"), Some(BackendKind::Reference));
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!(BackendKind::parse(""), None);
        assert_eq!(BackendKind::Tiled.name(), "tiled");
        assert_eq!(kernels_for(BackendKind::Reference).name(), "reference");
    }

    #[test]
    fn kernel_time_counters_accumulate_per_class() {
        let before = kernel_secs();
        timed(KernelClass::Gemm, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        record_kernel_secs(KernelClass::Spmm, 0.5);
        let after = kernel_secs();
        assert!(after[0] > before[0], "gemm secs advanced");
        assert!(
            (after[1] - before[1] - 0.5).abs() < 1e-12,
            "spmm secs exact"
        );
        assert_eq!(after[2], before[2], "elementwise untouched");
    }

    #[test]
    fn counters_are_thread_local() {
        record_kernel_secs(KernelClass::Gemm, 1.0);
        let other = std::thread::spawn(|| kernel_secs()[0]).join().unwrap();
        assert_eq!(other, 0.0, "fresh thread starts at zero");
    }

    #[test]
    fn nan_and_inf_propagate_through_both_backends() {
        // A zero row in A against NaN/Inf in B must land NaN in C: the
        // historical `al == 0.0` skip broke this.
        let m = 2;
        let k = 2;
        let n = 2;
        let a = vec![0.0, 0.0, 1.0, 0.0];
        let b = vec![f32::NAN, f32::INFINITY, 1.0, 1.0];
        for kind in [BackendKind::Reference, BackendKind::Tiled] {
            let mut out = vec![0.0f32; m * n];
            kernels_for(kind).matmul(&a, &b, &mut out, m, k, n);
            assert!(out[0].is_nan(), "{kind:?}: 0×NaN must propagate");
            assert!(out[1].is_nan(), "{kind:?}: 0×Inf is NaN");
            assert!(out[2].is_nan() && out[3].is_infinite(), "{kind:?}");
        }
    }
}
