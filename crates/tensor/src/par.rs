//! Minimal data-parallel helpers built on crossbeam scoped threads.
//!
//! Rayon is the idiomatic choice for this pattern, but the sanctioned
//! dependency set for this project is limited to crossbeam, so we provide a
//! small `parallel_for`-style splitter with the same spirit: split an index
//! range into per-thread chunks, run them on scoped threads, and join. Work
//! under [`PAR_THRESHOLD`] runs inline to avoid thread overhead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default for [`par_threshold`]: below this many scalar operations, run
/// sequentially.
pub const PAR_THRESHOLD: usize = 1 << 15;

/// The one shared work-size threshold every data-parallel helper consults:
/// ops whose estimated scalar-op count is below it run inline on the
/// calling thread.
///
/// There are exactly two knobs in the threading story, and this is the
/// second one:
/// - `ST_NUM_THREADS` caps the worker count ([`num_threads`]); `1` is a
///   true sequential path — no scoped pool is ever spawned.
/// - `ST_PAR_THRESHOLD` overrides this threshold (read once, then cached;
///   a non-numeric or empty value keeps the [`PAR_THRESHOLD`] default).
///   `0` makes every op eligible for the pool; a huge value forces
///   everything inline.
///
/// Per-op magic constants are not welcome: kernels estimate their work
/// (`m*n*k` for a GEMM, `nnz*n` for an spmm) and compare against this one
/// number, so the sequential/parallel switch is tunable in one place and
/// none of it can affect results — chunked reductions use fixed chunk
/// sizes (`reduce::SUM_ABS_CHUNK`) precisely so bit patterns never depend
/// on the thread count.
pub fn par_threshold() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(usize::MAX);
    let v = CACHED.load(Ordering::Relaxed);
    if v != usize::MAX {
        return v;
    }
    let v = threshold_override(std::env::var("ST_PAR_THRESHOLD").ok().as_deref())
        .unwrap_or(PAR_THRESHOLD);
    CACHED.store(v, Ordering::Relaxed);
    v
}

/// Parse a threshold override: any non-negative integer is taken verbatim;
/// unset, empty, or garbage means "no override".
fn threshold_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n != usize::MAX)
}

/// Number of worker threads to use for data-parallel loops.
///
/// Honors an `ST_NUM_THREADS` environment variable override (read once,
/// then cached) so latency-sensitive consumers — the serving benchmarks in
/// particular — can pin the thread count; otherwise defaults to the
/// machine's available parallelism.
pub fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let n = CACHED.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let n = thread_count_override(std::env::var("ST_NUM_THREADS").ok().as_deref()).unwrap_or_else(
        || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        },
    );
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Parse a thread-count override: a positive integer means "use exactly
/// this many threads"; anything else (unset, empty, zero, garbage) means
/// "no override".
fn thread_count_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Run `f(chunk_index, start, end)` over `[0, len)` split into roughly equal
/// chunks, in parallel when the estimated `work` is large enough.
///
/// `work` should approximate total scalar operations (e.g. `m * n * k` for a
/// matmul), so small tensors never pay thread overhead.
pub fn parallel_chunks<F>(len: usize, work: usize, f: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    let threads = num_threads();
    if threads <= 1 || work < par_threshold() || len < 2 {
        f(0, 0, len);
        return;
    }
    let chunks = threads.min(len);
    let per = len.div_ceil(chunks);
    crossbeam::scope(|scope| {
        for c in 0..chunks {
            let start = c * per;
            let end = ((c + 1) * per).min(len);
            if start >= end {
                break;
            }
            let f = &f;
            scope.spawn(move |_| f(c, start, end));
        }
    })
    .expect("parallel_chunks worker panicked");
}

/// Parallel map over disjoint mutable chunks of `out`, where chunk `i` of
/// size `chunk` is produced by `f(i, &mut out_chunk)`.
pub fn parallel_fill_chunks<F>(out: &mut [f32], chunk: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk > 0, "chunk must be positive");
    assert_eq!(out.len() % chunk, 0, "out must divide into whole chunks");
    let n = out.len() / chunk;
    let threads = num_threads();
    if threads <= 1 || work < par_threshold() || n < 2 {
        for (i, c) in out.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    crossbeam::scope(|scope| {
        let per = n.div_ceil(threads.min(n));
        for (t, slab) in out.chunks_mut(per * chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (j, c) in slab.chunks_mut(chunk).enumerate() {
                    f(t * per + j, c);
                }
            });
        }
    })
    .expect("parallel_fill_chunks worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_chunks_covers_range_once() {
        let sum = AtomicU64::new(0);
        // Large work to force the parallel path.
        parallel_chunks(1000, PAR_THRESHOLD * 2, |_, s, e| {
            for i in s..e {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn small_work_runs_inline() {
        let hit = AtomicU64::new(0);
        parallel_chunks(10, 10, |c, s, e| {
            // Sequential path calls exactly once with the full range.
            assert_eq!((c, s, e), (0, 0, 10));
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn env_override_parsing() {
        // The first num_threads() call may already have cached a value in
        // this process, so the override logic is pinned on the pure parser.
        assert_eq!(thread_count_override(Some("4")), Some(4));
        assert_eq!(thread_count_override(Some(" 2 ")), Some(2));
        assert_eq!(thread_count_override(Some("0")), None, "0 is no override");
        assert_eq!(thread_count_override(Some("lots")), None);
        assert_eq!(thread_count_override(Some("")), None);
        assert_eq!(thread_count_override(None), None);
    }

    #[test]
    fn par_threshold_defaults_and_override_parsing() {
        // The cached value in this process is the default unless the
        // environment set one before the first call.
        let expected = threshold_override(std::env::var("ST_PAR_THRESHOLD").ok().as_deref())
            .unwrap_or(PAR_THRESHOLD);
        assert_eq!(par_threshold(), expected);
        // The override parser itself is pinned on pure inputs.
        assert_eq!(
            threshold_override(Some("0")),
            Some(0),
            "0 is a valid threshold"
        );
        assert_eq!(threshold_override(Some(" 1024 ")), Some(1024));
        assert_eq!(threshold_override(Some("lots")), None);
        assert_eq!(threshold_override(Some("")), None);
        assert_eq!(threshold_override(None), None);
    }

    #[test]
    fn fill_chunks_produces_each_chunk() {
        let mut out = vec![0.0f32; 12];
        parallel_fill_chunks(&mut out, 3, PAR_THRESHOLD * 2, |i, c| {
            for x in c.iter_mut() {
                *x = i as f32;
            }
        });
        assert_eq!(out, vec![0., 0., 0., 1., 1., 1., 2., 2., 2., 3., 3., 3.]);
    }
}
