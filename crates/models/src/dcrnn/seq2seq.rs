//! The full DCRNN: multi-layer DCGRU encoder–decoder.
//!
//! The encoder consumes the `T`-step history; its final hidden states seed a
//! decoder that unrolls `T` future steps from a GO symbol, projecting each
//! hidden state to the output features. This is the heavyweight baseline of
//! Table 2 — its autograd graph retains ~2·T·layers step subgraphs, which is
//! why its GPU footprint dwarfs the single-layer PGT variant's.

use crate::common::{check_input, ModelConfig, Seq2Seq};
use crate::dcrnn::cell::DcGruCell;
use crate::graph_ops::Support;
use st_autograd::{ops, Module, Param, Tape, Var};
use st_tensor::{random, Tensor};

/// Encoder–decoder DCRNN.
pub struct Dcrnn {
    cfg: ModelConfig,
    encoder: Vec<DcGruCell>,
    decoder: Vec<DcGruCell>,
    proj_w: Param,
    proj_b: Param,
}

impl Dcrnn {
    /// Build from supports (see [`st_graph::diffusion_supports`]) and a seed.
    pub fn new(cfg: ModelConfig, supports: &[Support], seed: u64) -> Self {
        let mut rng = random::rng_from_seed(seed);
        let mut encoder = Vec::with_capacity(cfg.layers);
        let mut decoder = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let enc_in = if l == 0 { cfg.input_dim } else { cfg.hidden };
            encoder.push(DcGruCell::new(
                &format!("enc{l}"),
                supports,
                enc_in,
                cfg.hidden,
                &mut rng,
            ));
            let dec_in = if l == 0 { cfg.output_dim } else { cfg.hidden };
            decoder.push(DcGruCell::new(
                &format!("dec{l}"),
                supports,
                dec_in,
                cfg.hidden,
                &mut rng,
            ));
        }
        let proj_w = Param::new(
            "proj.w",
            random::xavier_uniform(cfg.hidden, cfg.output_dim, &mut rng),
        );
        let proj_b = Param::new("proj.b", Tensor::zeros([cfg.output_dim]));
        Dcrnn {
            cfg,
            encoder,
            decoder,
            proj_w,
            proj_b,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }
}

impl Module for Dcrnn {
    fn params(&self) -> Vec<Param> {
        let mut p = Vec::new();
        for c in &self.encoder {
            p.extend(c.params());
        }
        for c in &self.decoder {
            p.extend(c.params());
        }
        p.push(self.proj_w.clone());
        p.push(self.proj_b.clone());
        p
    }
}

impl Seq2Seq for Dcrnn {
    fn forward(&self, tape: &Tape, x: &Tensor) -> Var {
        check_input(x, &self.cfg, "DCRNN");
        let (b, t, n) = (x.dim(0), x.dim(1), x.dim(2));

        // ---- Encoder: roll the history through every layer. ----
        let mut hidden: Vec<Var> = self
            .encoder
            .iter()
            .map(|c| tape.constant(c.zero_state(b, n)))
            .collect();
        for step in 0..t {
            // x_t: [B, N, F]
            let xt = tape.constant(x.select(1, step).expect("step in range").contiguous());
            let mut inp = xt;
            for (l, cell) in self.encoder.iter().enumerate() {
                let h = cell.step(tape, &inp, &hidden[l]);
                hidden[l] = h.clone();
                inp = h;
            }
        }

        // ---- Decoder: unroll T future steps from a GO symbol. ----
        let mut dec_hidden = hidden; // decoder initialized from encoder state
        let mut outputs: Vec<Var> = Vec::with_capacity(t);
        let mut prev = tape.constant(Tensor::zeros([b, n, self.cfg.output_dim]));
        let w = tape.param(&self.proj_w);
        let bias = tape.param(&self.proj_b);
        for _ in 0..t {
            let mut inp = prev.clone();
            for (l, cell) in self.decoder.iter().enumerate() {
                let h = cell.step(tape, &inp, &dec_hidden[l]);
                dec_hidden[l] = h.clone();
                inp = h;
            }
            // Project hidden -> output features.
            let out = ops::bias_act(&ops::bmm(&inp, &w), &bias, ops::Activation::Identity); // [B, N, out]
            outputs.push(out.clone());
            prev = out; // autoregressive feed (no teacher forcing)
        }
        // Stack to [T, B, N, out] then permute to [B, T, N, out].
        let refs: Vec<&Var> = outputs.iter().collect();
        let stacked = ops::stack0(&refs);
        ops::permute(&stacked, &[1, 0, 2, 3])
    }

    fn name(&self) -> &'static str {
        "DCRNN"
    }

    fn flops_per_forward(&self, batch: usize) -> f64 {
        let n = self.cfg.num_nodes;
        let t = self.cfg.horizon as f64;
        let enc: f64 = self.encoder.iter().map(|c| c.flops(batch, n)).sum();
        let dec: f64 = self.decoder.iter().map(|c| c.flops(batch, n)).sum();
        let proj = 2.0 * (batch * n * self.cfg.hidden * self.cfg.output_dim) as f64;
        t * (enc + dec + proj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::{diffusion_supports, generators::highway_corridor};

    fn model(nodes: usize) -> (Dcrnn, Vec<Support>) {
        let net = highway_corridor(nodes, 1, 3);
        let supports = Support::wrap_all(diffusion_supports(&net.adjacency, 2));
        let cfg = ModelConfig {
            input_dim: 2,
            output_dim: 1,
            hidden: 8,
            num_nodes: nodes,
            horizon: 3,
            diffusion_steps: 2,
            layers: 2,
        };
        (Dcrnn::new(cfg, &supports, 42), supports)
    }

    #[test]
    fn forward_shape() {
        let (m, _) = model(5);
        let tape = Tape::new();
        let x = Tensor::ones([2, 3, 5, 2]);
        let y = m.forward(&tape, &x);
        assert_eq!(y.value().dims(), &[2, 3, 5, 1]);
    }

    #[test]
    fn all_params_receive_gradients() {
        let (m, _) = model(4);
        let tape = Tape::new();
        let x = st_tensor::random::uniform(
            [1, 3, 4, 2],
            -1.0,
            1.0,
            &mut st_tensor::random::rng_from_seed(5),
        );
        let y = m.forward(&tape, &x);
        let loss = ops::mean_all(&ops::square(&y));
        let grads = tape.backward(&loss);
        tape.accumulate_param_grads(&grads);
        let missing: Vec<String> = m
            .params()
            .iter()
            .filter(|p| p.grad().is_none())
            .map(Param::name)
            .collect();
        assert!(missing.is_empty(), "params without gradient: {missing:?}");
    }

    #[test]
    fn deterministic_by_seed() {
        let (a, _) = model(4);
        let (b, _) = model(4);
        assert_eq!(a.state_vector(), b.state_vector());
    }

    #[test]
    fn encoder_decoder_graph_is_larger_than_single_layer() {
        // The property behind Table 2's GPU column.
        let (m, supports) = model(5);
        let tape = Tape::new();
        let x = Tensor::ones([2, 3, 5, 2]);
        let _ = m.forward(&tape, &x);
        let dcrnn_bytes = tape.activation_bytes(4);

        let pgt = crate::pgt_dcrnn::PgtDcrnn::new(
            ModelConfig {
                input_dim: 2,
                output_dim: 1,
                hidden: 8,
                num_nodes: 5,
                horizon: 3,
                diffusion_steps: 2,
                layers: 1,
            },
            &supports,
            42,
        );
        let tape2 = Tape::new();
        let _ = pgt.forward(&tape2, &x);
        let pgt_bytes = tape2.activation_bytes(4);
        assert!(
            dcrnn_bytes > 2 * pgt_bytes,
            "DCRNN {dcrnn_bytes} vs PGT {pgt_bytes}"
        );
    }
}
