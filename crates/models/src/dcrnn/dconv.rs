//! The diffusion convolution layer.
//!
//! `DConv(X) = Σ_k  (S_k X) W_k + b`, where the supports `S_k` are the
//! identity plus forward/reverse random-walk powers (Li et al. eq. 2). The
//! implementation concatenates the `S_k X` terms along the feature axis and
//! applies one fused weight matrix, exactly like the reference code.

use crate::graph_ops::{spmm_var, Support};
use st_autograd::ops::Activation;
use st_autograd::{ops, Module, Param, Tape, Var};
use st_tensor::random;

/// A diffusion convolution mapping `[B, N, in_dim] → [B, N, out_dim]`.
pub struct DiffusionConv {
    supports: Vec<Support>,
    w: Param,
    b: Param,
    in_dim: usize,
    out_dim: usize,
}

impl DiffusionConv {
    /// Create with Xavier-initialized weights. `supports` come from
    /// [`st_graph::diffusion_supports`].
    pub fn new(
        name: &str,
        supports: Vec<Support>,
        in_dim: usize,
        out_dim: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> Self {
        let k = supports.len();
        let w = Param::new(
            format!("{name}.w"),
            random::xavier_uniform(k * in_dim, out_dim, rng),
        );
        let b = Param::new(format!("{name}.b"), st_tensor::Tensor::zeros([out_dim]));
        DiffusionConv {
            supports,
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Apply to `x: [B, N, in_dim]`, producing `[B, N, out_dim]`.
    ///
    /// Parameters are bound through [`Tape::param`], so the trainer's
    /// [`Tape::accumulate_param_grads`] collects their gradients after the
    /// backward pass.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        self.forward_with_act(tape, &self.supports, x, Activation::Identity)
    }

    /// Apply with caller-supplied supports (the dynamic-graph path: the
    /// weights are time-invariant, the diffusion operators are not). The
    /// support count must match construction — the fused weight is laid
    /// out `[K·in, out]`.
    pub fn forward_with(&self, tape: &Tape, supports: &[Support], x: &Var) -> Var {
        self.forward_with_act(tape, supports, x, Activation::Identity)
    }

    /// [`DiffusionConv::forward`] with the gate nonlinearity fused into the
    /// bias add — the DCRNN gate path (`dconv → add-bias → σ/tanh`) runs as
    /// one elementwise kernel instead of two materializing tape nodes.
    pub fn forward_act(&self, tape: &Tape, x: &Var, act: Activation) -> Var {
        self.forward_with_act(tape, &self.supports, x, act)
    }

    /// [`DiffusionConv::forward_with`] with a fused bias+activation tail.
    pub fn forward_with_act(
        &self,
        tape: &Tape,
        supports: &[Support],
        x: &Var,
        act: Activation,
    ) -> Var {
        debug_assert_eq!(x.value().dim(2), self.in_dim, "dconv input dim");
        assert_eq!(
            supports.len(),
            self.supports.len(),
            "support count is baked into the weight layout"
        );
        // S_k X for every support, concatenated over features:
        // [B, N, K * in_dim].
        let diffused: Vec<Var> = supports.iter().map(|s| spmm_var(tape, s, x)).collect();
        let refs: Vec<&Var> = diffused.iter().collect();
        let cat = ops::concat(&refs, 2);
        // Fused projection: bmm with the shared [K*in, out] weight, then
        // the bias/activation tail in one pass.
        let w = tape.param(&self.w);
        let b = tape.param(&self.b);
        ops::bias_act(&ops::bmm(&cat, &w), &b, act)
    }

    /// FLOPs of one forward call at batch `b` over `n` nodes:
    /// spmm per support (≈2·nnz·in) + the fused GEMM.
    pub fn flops(&self, batch: usize, n: usize) -> f64 {
        let k = self.supports.len() as f64;
        let nnz: usize = self.supports.iter().map(|s| s.mat.nnz()).sum();
        let spmm = 2.0 * nnz as f64 * self.in_dim as f64 * batch as f64;
        let gemm = 2.0 * batch as f64 * n as f64 * (k * self.in_dim as f64) * self.out_dim as f64;
        spmm + gemm
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Module for DiffusionConv {
    fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.b.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::{diffusion_supports, Adjacency};
    use st_tensor::Tensor;

    fn layer(in_dim: usize, out_dim: usize) -> DiffusionConv {
        let adj = Adjacency::from_dense(3, vec![0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
        let supports = Support::wrap_all(diffusion_supports(&adj, 2));
        let mut rng = st_tensor::random::rng_from_seed(1);
        DiffusionConv::new("dc", supports, in_dim, out_dim, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let dc = layer(2, 4);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([5, 3, 2]));
        let y = dc.forward(&tape, &x);
        assert_eq!(y.value().dims(), &[5, 3, 4]);
    }

    #[test]
    fn gradients_flow_to_weights() {
        let dc = layer(1, 2);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([2, 3, 1]));
        let y = dc.forward(&tape, &x);
        let loss = ops::sum_all(&y);
        let grads = tape.backward(&loss);
        tape.accumulate_param_grads(&grads);
        let gw = dc.w.grad().expect("weight gradient accumulated");
        assert_eq!(gw.dims(), dc.w.value().dims());
        assert!(gw.to_vec().iter().any(|&v| v != 0.0));
        let gb = dc.b.grad().expect("bias gradient accumulated");
        // Bias gradient for sum-loss = batch * nodes per output unit.
        assert!(gb.to_vec().iter().all(|&v| (v - 6.0).abs() < 1e-4));
    }

    #[test]
    fn repeated_binding_accumulates_once_per_backward() {
        // Use the same layer twice in one graph (as a recurrent cell does):
        // binding must reuse one leaf and the gradient must combine both uses.
        let dc = layer(1, 1);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([1, 3, 1]));
        let y1 = dc.forward(&tape, &x);
        let y2 = dc.forward(&tape, &y1);
        let loss = ops::sum_all(&y2);
        let grads = tape.backward(&loss);
        tape.accumulate_param_grads(&grads);
        assert!(dc.w.grad().is_some());
    }

    #[test]
    fn flops_positive_and_scale_with_batch() {
        let dc = layer(2, 4);
        assert!(dc.flops(1, 3) > 0.0);
        assert!(dc.flops(8, 3) > dc.flops(4, 3));
    }
}
