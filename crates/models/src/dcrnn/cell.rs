//! The DCGRU cell: a GRU whose gate transforms are diffusion convolutions.
//!
//!   r = σ(DConv_r([x, h]))        — reset gate
//!   u = σ(DConv_u([x, h]))        — update gate
//!   c = tanh(DConv_c([x, r ⊙ h])) — candidate state
//!   h' = u ⊙ h + (1 − u) ⊙ c
//!
//! All three convolutions see the concatenation of input and hidden state
//! along the feature axis, as in Li et al.'s reference implementation.

use crate::dcrnn::dconv::DiffusionConv;
use crate::graph_ops::Support;
use st_autograd::ops::Activation;
use st_autograd::{ops, Module, Param, Tape, Var};
use st_tensor::Tensor;

/// One DCGRU cell operating on `[B, N, ·]` states.
pub struct DcGruCell {
    gate_r: DiffusionConv,
    gate_u: DiffusionConv,
    cand: DiffusionConv,
    input_dim: usize,
    hidden: usize,
}

impl DcGruCell {
    /// Build a cell. Each gate owns its own diffusion convolution over
    /// `input_dim + hidden` inputs.
    pub fn new(
        name: &str,
        supports: &[Support],
        input_dim: usize,
        hidden: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> Self {
        let io = input_dim + hidden;
        DcGruCell {
            gate_r: DiffusionConv::new(&format!("{name}.r"), supports.to_vec(), io, hidden, rng),
            gate_u: DiffusionConv::new(&format!("{name}.u"), supports.to_vec(), io, hidden, rng),
            cand: DiffusionConv::new(&format!("{name}.c"), supports.to_vec(), io, hidden, rng),
            input_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// A zero initial hidden state for batch size `b` over `n` nodes.
    pub fn zero_state(&self, b: usize, n: usize) -> Tensor {
        Tensor::zeros([b, n, self.hidden])
    }

    /// One step: `x: [B, N, input_dim]`, `h: [B, N, hidden]` → new hidden.
    pub fn step(&self, tape: &Tape, x: &Var, h: &Var) -> Var {
        debug_assert_eq!(x.value().dim(2), self.input_dim, "cell input dim");
        let xh = ops::concat(&[x, h], 2);
        let r = self.gate_r.forward_act(tape, &xh, Activation::Sigmoid);
        let u = self.gate_u.forward_act(tape, &xh, Activation::Sigmoid);
        let rh = ops::mul(&r, h);
        let xrh = ops::concat(&[x, &rh], 2);
        let c = self.cand.forward_act(tape, &xrh, Activation::Tanh);
        // h' = u*h + (1-u)*c, as one fused blend node.
        ops::gru_blend(&u, h, &c)
    }

    /// One step with caller-supplied supports (dynamic topology): the
    /// gate weights stay shared across time while the diffusion operators
    /// change per step.
    pub fn step_with(&self, tape: &Tape, supports: &[Support], x: &Var, h: &Var) -> Var {
        debug_assert_eq!(x.value().dim(2), self.input_dim, "cell input dim");
        let xh = ops::concat(&[x, h], 2);
        let r = self
            .gate_r
            .forward_with_act(tape, supports, &xh, Activation::Sigmoid);
        let u = self
            .gate_u
            .forward_with_act(tape, supports, &xh, Activation::Sigmoid);
        let rh = ops::mul(&r, h);
        let xrh = ops::concat(&[x, &rh], 2);
        let c = self
            .cand
            .forward_with_act(tape, supports, &xrh, Activation::Tanh);
        ops::gru_blend(&u, h, &c)
    }

    /// FLOPs of one step (three diffusion convolutions + gate arithmetic).
    pub fn flops(&self, batch: usize, n: usize) -> f64 {
        let conv =
            self.gate_r.flops(batch, n) + self.gate_u.flops(batch, n) + self.cand.flops(batch, n);
        let gates = 6.0 * (batch * n * self.hidden) as f64;
        conv + gates
    }
}

impl Module for DcGruCell {
    fn params(&self) -> Vec<Param> {
        let mut p = self.gate_r.params();
        p.extend(self.gate_u.params());
        p.extend(self.cand.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::{diffusion_supports, Adjacency};

    fn cell() -> DcGruCell {
        let adj = Adjacency::from_dense(4, {
            let mut w = vec![0.0; 16];
            for i in 0..3 {
                w[i * 4 + i + 1] = 1.0;
            }
            w
        });
        let supports = Support::wrap_all(diffusion_supports(&adj, 2));
        let mut rng = st_tensor::random::rng_from_seed(9);
        DcGruCell::new("cell", &supports, 2, 8, &mut rng)
    }

    #[test]
    fn step_preserves_shape() {
        let c = cell();
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([3, 4, 2]));
        let h = tape.leaf(c.zero_state(3, 4));
        let h2 = c.step(&tape, &x, &h);
        assert_eq!(h2.value().dims(), &[3, 4, 8]);
    }

    #[test]
    fn hidden_state_stays_bounded() {
        // GRU interpolation keeps h in (-1, 1) when starting from zero.
        let c = cell();
        let tape = Tape::new();
        let x = tape.leaf(st_tensor::random::uniform(
            [2, 4, 2],
            -3.0,
            3.0,
            &mut st_tensor::random::rng_from_seed(2),
        ));
        let mut h = tape.leaf(c.zero_state(2, 4));
        for _ in 0..5 {
            h = c.step(&tape, &x, &h);
        }
        assert!(h.value().to_vec().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn params_count_and_gradients() {
        let c = cell();
        // 3 convolutions × (w, b).
        assert_eq!(c.params().len(), 6);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([1, 4, 2]));
        let h = tape.leaf(c.zero_state(1, 4));
        let h2 = c.step(&tape, &x, &h);
        let loss = ops::sum_all(&h2);
        let grads = tape.backward(&loss);
        tape.accumulate_param_grads(&grads);
        // Update-gate and candidate weights must receive gradient.
        let with_grad = c.params().iter().filter(|p| p.grad().is_some()).count();
        assert!(with_grad >= 4, "only {with_grad} params got gradients");
    }
}
