//! DCRNN (Li et al., ICLR 2018) and its building blocks.
//!
//! - [`dconv`]: the K-step dual-direction diffusion convolution layer.
//! - [`cell`]: the DCGRU cell (diffusion convolutions inside GRU gates).
//! - [`seq2seq`]: the full encoder–decoder DCRNN — the heavyweight baseline
//!   of the paper's Table 2 / Fig 2.

pub mod cell;
pub mod dconv;
pub mod seq2seq;

pub use cell::DcGruCell;
pub use dconv::DiffusionConv;
pub use seq2seq::Dcrnn;
