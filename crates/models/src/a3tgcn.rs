//! A3T-GCN (Zhu et al. 2020): TGCN cell + temporal attention (§5.5, Table 6).
//!
//! The TGCN cell is a GRU whose gates use a symmetric-normalized graph
//! convolution `Â X W`. A3T-GCN collects the hidden state at every input
//! step and pools them with a learned soft attention over time; the pooled
//! context is projected to the forecast horizon.

use crate::common::{check_input, ModelConfig, Seq2Seq};
use crate::graph_ops::{spmm_var, Support};
use st_autograd::{ops, Module, Param, Tape, Var};
use st_tensor::{random, Tensor};

/// Graph-convolutional GRU cell used by TGCN/A3T-GCN.
pub struct TgcnCell {
    a_hat: Support,
    w_gates: Param, // [in+hidden, 2*hidden] fused r/u gates
    b_gates: Param,
    w_cand: Param, // [in+hidden, hidden]
    b_cand: Param,
    input_dim: usize,
    hidden: usize,
}

impl TgcnCell {
    /// Build over the sym-normalized adjacency support.
    pub fn new(
        name: &str,
        a_hat: Support,
        input_dim: usize,
        hidden: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> Self {
        let io = input_dim + hidden;
        TgcnCell {
            a_hat,
            w_gates: Param::new(
                format!("{name}.wg"),
                random::xavier_uniform(io, 2 * hidden, rng),
            ),
            b_gates: Param::new(format!("{name}.bg"), Tensor::full([2 * hidden], 1.0)),
            w_cand: Param::new(
                format!("{name}.wc"),
                random::xavier_uniform(io, hidden, rng),
            ),
            b_cand: Param::new(format!("{name}.bc"), Tensor::zeros([hidden])),
            input_dim,
            hidden,
        }
    }

    /// Zero hidden state.
    pub fn zero_state(&self, b: usize, n: usize) -> Tensor {
        Tensor::zeros([b, n, self.hidden])
    }

    /// One recurrent step.
    pub fn step(&self, tape: &Tape, x: &Var, h: &Var) -> Var {
        debug_assert_eq!(x.value().dim(2), self.input_dim);
        let xh = ops::concat(&[x, h], 2);
        // Graph conv: Â [x, h] then fused gate projection.
        let gxh = spmm_var(tape, &self.a_hat, &xh);
        let wg = tape.param(&self.w_gates);
        let bg = tape.param(&self.b_gates);
        let gates = ops::bias_act(&ops::bmm(&gxh, &wg), &bg, ops::Activation::Sigmoid); // [B,N,2H]
        let r = ops::narrow(&gates, 2, 0, self.hidden);
        let u = ops::narrow(&gates, 2, self.hidden, self.hidden);
        let rh = ops::mul(&r, h);
        let xrh = ops::concat(&[x, &rh], 2);
        let gxrh = spmm_var(tape, &self.a_hat, &xrh);
        let wc = tape.param(&self.w_cand);
        let bc = tape.param(&self.b_cand);
        let c = ops::bias_act(&ops::bmm(&gxrh, &wc), &bc, ops::Activation::Tanh);
        ops::gru_blend(&u, h, &c)
    }

    /// FLOPs of one step.
    pub fn flops(&self, batch: usize, n: usize) -> f64 {
        let nnz = self.a_hat.mat.nnz() as f64;
        let io = (self.input_dim + self.hidden) as f64;
        let spmm = 2.0 * 2.0 * nnz * io * batch as f64;
        let gemm = 2.0 * (batch * n) as f64 * io * (3 * self.hidden) as f64;
        spmm + gemm
    }
}

impl Module for TgcnCell {
    fn params(&self) -> Vec<Param> {
        vec![
            self.w_gates.clone(),
            self.b_gates.clone(),
            self.w_cand.clone(),
            self.b_cand.clone(),
        ]
    }
}

/// A3T-GCN: TGCN + soft temporal attention + horizon head.
pub struct A3tGcn {
    cfg: ModelConfig,
    cell: TgcnCell,
    att_w1: Param, // [hidden, att]
    att_b1: Param,
    att_w2: Param, // [att, 1]
    head_w: Param, // [hidden, horizon * output_dim]
    head_b: Param,
}

impl A3tGcn {
    /// Attention bottleneck width.
    const ATT: usize = 16;

    /// Build over the sym-normalized adjacency.
    pub fn new(cfg: ModelConfig, a_hat: Support, seed: u64) -> Self {
        let mut rng = random::rng_from_seed(seed);
        let cell = TgcnCell::new("a3t.cell", a_hat, cfg.input_dim, cfg.hidden, &mut rng);
        A3tGcn {
            att_w1: Param::new(
                "a3t.att.w1",
                random::xavier_uniform(cfg.hidden, Self::ATT, &mut rng),
            ),
            att_b1: Param::new("a3t.att.b1", Tensor::zeros([Self::ATT])),
            att_w2: Param::new("a3t.att.w2", random::xavier_uniform(Self::ATT, 1, &mut rng)),
            head_w: Param::new(
                "a3t.head.w",
                random::xavier_uniform(cfg.hidden, cfg.horizon * cfg.output_dim, &mut rng),
            ),
            head_b: Param::new("a3t.head.b", Tensor::zeros([cfg.horizon * cfg.output_dim])),
            cell,
            cfg,
        }
    }
}

impl Module for A3tGcn {
    fn params(&self) -> Vec<Param> {
        let mut p = self.cell.params();
        p.extend([
            self.att_w1.clone(),
            self.att_b1.clone(),
            self.att_w2.clone(),
            self.head_w.clone(),
            self.head_b.clone(),
        ]);
        p
    }
}

impl Seq2Seq for A3tGcn {
    fn forward(&self, tape: &Tape, x: &Tensor) -> Var {
        check_input(x, &self.cfg, "A3T-GCN");
        let (b, t, n) = (x.dim(0), x.dim(1), x.dim(2));
        let mut h = tape.constant(self.cell.zero_state(b, n));
        let mut states: Vec<Var> = Vec::with_capacity(t);
        for step in 0..t {
            let xt = tape.constant(x.select(1, step).expect("in range").contiguous());
            h = self.cell.step(tape, &xt, &h);
            states.push(h.clone());
        }
        // Attention over time: score_t from each hidden state.
        let w1 = tape.param(&self.att_w1);
        let b1 = tape.param(&self.att_b1);
        let w2 = tape.param(&self.att_w2);
        let scores: Vec<Var> = states
            .iter()
            .map(|s| {
                // [B,N,H] -> [B,N,att] -> tanh -> [B,N,1] -> mean over nodes
                let e = ops::bias_act(&ops::bmm(s, &w1), &b1, ops::Activation::Tanh);
                let sc = ops::bmm(&e, &w2); // [B, N, 1]
                let sc = ops::mean_axis(&sc, 1); // [B, 1]
                ops::reshape(&sc, vec![sc.value().dim(0)])
            })
            .collect();
        let refs: Vec<&Var> = scores.iter().collect();
        let score_mat = ops::stack0(&refs); // [T, B]
        let alpha = ops::softmax_last(&ops::permute(&score_mat, &[1, 0])); // [B, T]

        // Context = Σ_t α_t h_t.
        let mut context: Option<Var> = None;
        for (step, s) in states.iter().enumerate() {
            let a_t = ops::narrow(&alpha, 1, step, 1); // [B, 1]
            let a_t = ops::reshape(&a_t, vec![b, 1, 1]);
            let term = ops::mul(s, &a_t);
            context = Some(match context {
                None => term,
                Some(acc) => ops::add(&acc, &term),
            });
        }
        let context = context.expect("at least one step");

        // Head: [B,N,H] @ [H, T*out] -> [B,N,T*out] -> [B,T,N,out].
        let hw = tape.param(&self.head_w);
        let hb = tape.param(&self.head_b);
        let out = ops::bias_act(&ops::bmm(&context, &hw), &hb, ops::Activation::Identity);
        let out = ops::reshape(&out, vec![b, n, t, self.cfg.output_dim]);
        ops::permute(&out, &[0, 2, 1, 3])
    }

    fn name(&self) -> &'static str {
        "A3T-GCN"
    }

    fn flops_per_forward(&self, batch: usize) -> f64 {
        let n = self.cfg.num_nodes;
        let t = self.cfg.horizon as f64;
        let att = 2.0 * (batch * n * self.cfg.hidden * Self::ATT) as f64;
        let head = 2.0 * (batch * n * self.cfg.hidden * self.cfg.horizon) as f64;
        t * (self.cell.flops(batch, n) + att) + head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::{generators::random_geometric, sym_norm_adjacency};

    fn model(nodes: usize, horizon: usize) -> A3tGcn {
        let net = random_geometric(nodes, 30.0, 4);
        let a_hat = Support::new(sym_norm_adjacency(&net.adjacency));
        let cfg = ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 10,
            num_nodes: nodes,
            horizon,
            diffusion_steps: 1,
            layers: 1,
        };
        A3tGcn::new(cfg, a_hat, 11)
    }

    #[test]
    fn forward_shape() {
        let m = model(6, 4);
        let tape = Tape::new();
        let y = m.forward(&tape, &Tensor::ones([2, 4, 6, 1]));
        assert_eq!(y.value().dims(), &[2, 4, 6, 1]);
    }

    #[test]
    fn attention_weights_influence_output() {
        // Gradients must reach the attention parameters.
        let m = model(5, 3);
        let tape = Tape::new();
        let x = st_tensor::random::uniform(
            [2, 3, 5, 1],
            -1.0,
            1.0,
            &mut st_tensor::random::rng_from_seed(6),
        );
        let y = m.forward(&tape, &x);
        let l = ops::mean_all(&ops::square(&y));
        let grads = tape.backward(&l);
        tape.accumulate_param_grads(&grads);
        assert!(m.att_w1.grad().is_some(), "attention W1 gradient missing");
        assert!(m.att_w2.grad().is_some(), "attention W2 gradient missing");
        assert!(m.head_w.grad().is_some(), "head gradient missing");
    }

    #[test]
    fn training_reduces_loss() {
        use st_autograd::loss;
        use st_autograd::optim::{Adam, Optimizer};
        let m = model(4, 3);
        let x = st_tensor::random::uniform(
            [2, 3, 4, 1],
            -1.0,
            1.0,
            &mut st_tensor::random::rng_from_seed(8),
        );
        let target = Tensor::full([2, 3, 4, 1], -0.25);
        let mut opt = Adam::new(m.params(), 0.03);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            opt.zero_grad();
            let tape = Tape::new();
            let pred = m.forward(&tape, &x);
            let tgt = tape.constant(target.clone());
            let l = loss::mse(&pred, &tgt);
            last = l.value().item();
            first.get_or_insert(last);
            let grads = tape.backward(&l);
            tape.accumulate_param_grads(&grads);
            opt.step();
        }
        assert!(last < first.unwrap() * 0.5, "{:?} -> {last}", first);
    }
}
