//! ST-LLM-style model (§5.5, Fig 10): spatial-temporal token embeddings
//! feeding a small transformer encoder.
//!
//! The real ST-LLM embeds spatial-temporal context into tokens processed by
//! a partially-frozen GPT-2. A GPT-2 checkpoint is not shippable offline, so
//! this substitute keeps the pieces the scaling experiment exercises: per
//! (node, step) token embeddings with learned node and position embeddings,
//! multi-head self-attention blocks over the time axis, and a forecasting
//! head — i.e., a sequence-to-sequence attention model whose per-step cost
//! is attention-dominated, matching the workload shape of Fig 10.

use crate::common::{check_input, ModelConfig, Seq2Seq};
use st_autograd::{ops, Module, Param, Tape, Var};
use st_tensor::{random, Tensor};

/// One pre-norm transformer block (MHA with `heads` heads + FFN).
struct Block {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    ln1_g: Param,
    ln1_b: Param,
    ffn_w1: Param,
    ffn_b1: Param,
    ffn_w2: Param,
    ffn_b2: Param,
    ln2_g: Param,
    ln2_b: Param,
    dim: usize,
    heads: usize,
}

impl Block {
    fn new(name: &str, dim: usize, heads: usize, rng: &mut rand::rngs::StdRng) -> Self {
        assert_eq!(dim % heads, 0, "dim must divide heads");
        let ffn = 2 * dim;
        Block {
            wq: Param::new(format!("{name}.wq"), random::xavier_uniform(dim, dim, rng)),
            wk: Param::new(format!("{name}.wk"), random::xavier_uniform(dim, dim, rng)),
            wv: Param::new(format!("{name}.wv"), random::xavier_uniform(dim, dim, rng)),
            wo: Param::new(format!("{name}.wo"), random::xavier_uniform(dim, dim, rng)),
            ln1_g: Param::new(format!("{name}.ln1.g"), Tensor::ones([dim])),
            ln1_b: Param::new(format!("{name}.ln1.b"), Tensor::zeros([dim])),
            ffn_w1: Param::new(
                format!("{name}.ffn.w1"),
                random::xavier_uniform(dim, ffn, rng),
            ),
            ffn_b1: Param::new(format!("{name}.ffn.b1"), Tensor::zeros([ffn])),
            ffn_w2: Param::new(
                format!("{name}.ffn.w2"),
                random::xavier_uniform(ffn, dim, rng),
            ),
            ffn_b2: Param::new(format!("{name}.ffn.b2"), Tensor::zeros([dim])),
            ln2_g: Param::new(format!("{name}.ln2.g"), Tensor::ones([dim])),
            ln2_b: Param::new(format!("{name}.ln2.b"), Tensor::zeros([dim])),
            dim,
            heads,
        }
    }

    /// `x: [S, T, D]` where S = batch × nodes sequences of length T.
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let (s, t, d) = (x.value().dim(0), x.value().dim(1), x.value().dim(2));
        let hd = d / self.heads;

        // ---- Multi-head self-attention (pre-norm). ----
        let g1 = tape.param(&self.ln1_g);
        let b1 = tape.param(&self.ln1_b);
        let normed = ops::layer_norm(x, &g1, &b1, 1e-5);
        let q = ops::bmm(&normed, &tape.param(&self.wq)); // [S,T,D]
        let k = ops::bmm(&normed, &tape.param(&self.wk));
        let v = ops::bmm(&normed, &tape.param(&self.wv));

        let mut head_outs: Vec<Var> = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = ops::narrow(&q, 2, h * hd, hd); // [S,T,hd]
            let kh = ops::narrow(&k, 2, h * hd, hd);
            let vh = ops::narrow(&v, 2, h * hd, hd);
            let kt = ops::permute(&kh, &[0, 2, 1]); // [S,hd,T]
            let scores = ops::mul_scalar(&ops::bmm(&qh, &kt), 1.0 / (hd as f32).sqrt());
            let attn = ops::softmax_last(&scores); // [S,T,T]
            head_outs.push(ops::bmm(&attn, &vh)); // [S,T,hd]
        }
        let head_refs: Vec<&Var> = head_outs.iter().collect();
        let mha = ops::concat(&head_refs, 2); // [S,T,D]
        let mha = ops::bmm(&mha, &tape.param(&self.wo));
        let x = ops::add(x, &mha); // residual

        // ---- FFN (pre-norm). ----
        let g2 = tape.param(&self.ln2_g);
        let b2 = tape.param(&self.ln2_b);
        let normed2 = ops::layer_norm(&x, &g2, &b2, 1e-5);
        let hid = ops::gelu(&ops::add(
            &ops::bmm(&normed2, &tape.param(&self.ffn_w1)),
            &tape.param(&self.ffn_b1),
        ));
        let ffn = ops::add(
            &ops::bmm(&hid, &tape.param(&self.ffn_w2)),
            &tape.param(&self.ffn_b2),
        );
        let _ = (s, t);
        ops::add(&x, &ffn)
    }

    fn params(&self) -> Vec<Param> {
        vec![
            self.wq.clone(),
            self.wk.clone(),
            self.wv.clone(),
            self.wo.clone(),
            self.ln1_g.clone(),
            self.ln1_b.clone(),
            self.ffn_w1.clone(),
            self.ffn_b1.clone(),
            self.ffn_w2.clone(),
            self.ffn_b2.clone(),
            self.ln2_g.clone(),
            self.ln2_b.clone(),
        ]
    }

    fn flops(&self, seqs: usize, t: usize) -> f64 {
        let d = self.dim as f64;
        let proj = 4.0 * 2.0 * (seqs * t) as f64 * d * d; // q,k,v,o
        let attn = 2.0 * 2.0 * seqs as f64 * (t * t) as f64 * d;
        let ffn = 2.0 * 2.0 * (seqs * t) as f64 * d * (2.0 * d);
        proj + attn + ffn
    }
}

/// The ST-LLM-style forecaster.
pub struct StLlm {
    cfg: ModelConfig,
    token_w: Param, // [input_dim, dim]
    token_b: Param,
    node_emb: Param, // [num_nodes, dim]
    pos_emb: Param,  // [horizon, dim]
    blocks: Vec<Block>,
    head_w: Param, // [dim, output_dim]
    head_b: Param,
}

impl StLlm {
    /// Transformer width (small GPT-2-flavoured).
    const DIM: usize = 32;
    /// Attention heads per block.
    const HEADS: usize = 2;
    /// Encoder depth.
    const DEPTH: usize = 2;

    /// Build from a config and seed.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        let mut rng = random::rng_from_seed(seed);
        let d = Self::DIM;
        let blocks = (0..Self::DEPTH)
            .map(|i| Block::new(&format!("stllm.b{i}"), d, Self::HEADS, &mut rng))
            .collect();
        StLlm {
            token_w: Param::new(
                "stllm.tok.w",
                random::xavier_uniform(cfg.input_dim, d, &mut rng),
            ),
            token_b: Param::new("stllm.tok.b", Tensor::zeros([d])),
            node_emb: Param::new(
                "stllm.node_emb",
                random::normal([cfg.num_nodes, d], 0.0, 0.02, &mut rng),
            ),
            pos_emb: Param::new(
                "stllm.pos_emb",
                random::normal([cfg.horizon, d], 0.0, 0.02, &mut rng),
            ),
            head_w: Param::new(
                "stllm.head.w",
                random::xavier_uniform(d, cfg.output_dim, &mut rng),
            ),
            head_b: Param::new("stllm.head.b", Tensor::zeros([cfg.output_dim])),
            blocks,
            cfg,
        }
    }
}

impl Module for StLlm {
    fn params(&self) -> Vec<Param> {
        let mut p = vec![
            self.token_w.clone(),
            self.token_b.clone(),
            self.node_emb.clone(),
            self.pos_emb.clone(),
        ];
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.push(self.head_w.clone());
        p.push(self.head_b.clone());
        p
    }
}

impl Seq2Seq for StLlm {
    fn forward(&self, tape: &Tape, x: &Tensor) -> Var {
        check_input(x, &self.cfg, "ST-LLM");
        let (b, t, n, f) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let d = Self::DIM;

        // Tokens: [B,T,N,F] -> [B,N,T,F] -> [B*N, T, F] -> project to D.
        let xt = tape.constant(
            x.permute(&[0, 2, 1, 3])
                .expect("rank 4")
                .contiguous()
                .reshape([b * n, t, f])
                .expect("same numel"),
        );
        let tokens = ops::add(
            &ops::bmm(&xt, &tape.param(&self.token_w)),
            &tape.param(&self.token_b),
        ); // [B*N, T, D]

        // Add node embedding (per sequence) and position embedding (per step).
        let node = tape.param(&self.node_emb); // [N, D]
                                               // Tile node embeddings to [B*N, 1, D] by index-select.
        let idx: Vec<usize> = (0..b).flat_map(|_| 0..n).collect();
        let node_rows = ops::index_select0(&node, &idx); // [B*N, D]
        let node_rows = ops::reshape(&node_rows, vec![b * n, 1, d]);
        let pos = ops::reshape(&tape.param(&self.pos_emb), vec![1, t, d]);
        let mut h = ops::add(&ops::add(&tokens, &node_rows), &pos);

        for blk in &self.blocks {
            h = blk.forward(tape, &h);
        }

        // Head: per-token forecast; reshape back to [B, T, N, out].
        let out = ops::add(
            &ops::bmm(&h, &tape.param(&self.head_w)),
            &tape.param(&self.head_b),
        ); // [B*N, T, out]
        let out = ops::reshape(&out, vec![b, n, t, self.cfg.output_dim]);
        ops::permute(&out, &[0, 2, 1, 3])
    }

    fn name(&self) -> &'static str {
        "ST-LLM"
    }

    fn flops_per_forward(&self, batch: usize) -> f64 {
        let n = self.cfg.num_nodes;
        let t = self.cfg.horizon;
        let seqs = batch * n;
        let embed = 2.0 * (seqs * t * self.cfg.input_dim * Self::DIM) as f64;
        let blocks: f64 = self.blocks.iter().map(|b| b.flops(seqs, t)).sum();
        let head = 2.0 * (seqs * t * Self::DIM * self.cfg.output_dim) as f64;
        embed + blocks + head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(nodes: usize, horizon: usize) -> StLlm {
        let cfg = ModelConfig {
            input_dim: 2,
            output_dim: 1,
            hidden: 32,
            num_nodes: nodes,
            horizon,
            diffusion_steps: 1,
            layers: 2,
        };
        StLlm::new(cfg, 13)
    }

    #[test]
    fn forward_shape() {
        let m = model(4, 5);
        let tape = Tape::new();
        let y = m.forward(&tape, &Tensor::ones([2, 5, 4, 2]));
        assert_eq!(y.value().dims(), &[2, 5, 4, 1]);
    }

    #[test]
    fn node_embeddings_get_gradients() {
        let m = model(3, 4);
        let tape = Tape::new();
        let x = st_tensor::random::uniform(
            [1, 4, 3, 2],
            -1.0,
            1.0,
            &mut st_tensor::random::rng_from_seed(2),
        );
        let y = m.forward(&tape, &x);
        let l = ops::mean_all(&ops::square(&y));
        let grads = tape.backward(&l);
        tape.accumulate_param_grads(&grads);
        assert!(m.node_emb.grad().is_some());
        assert!(m.pos_emb.grad().is_some());
        for blk in &m.blocks {
            assert!(blk.wq.grad().is_some(), "attention weights need grads");
        }
    }

    #[test]
    fn training_reduces_loss() {
        use st_autograd::loss;
        use st_autograd::optim::{Adam, Optimizer};
        let m = model(3, 3);
        let x = st_tensor::random::uniform(
            [2, 3, 3, 2],
            -1.0,
            1.0,
            &mut st_tensor::random::rng_from_seed(4),
        );
        let target = Tensor::full([2, 3, 3, 1], 0.3);
        let mut opt = Adam::new(m.params(), 0.02);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            opt.zero_grad();
            let tape = Tape::new();
            let pred = m.forward(&tape, &x);
            let tgt = tape.constant(target.clone());
            let l = loss::mse(&pred, &tgt);
            last = l.value().item();
            first.get_or_insert(last);
            let grads = tape.backward(&l);
            tape.accumulate_param_grads(&grads);
            opt.step();
        }
        assert!(last < first.unwrap() * 0.5, "{:?} -> {last}", first);
    }

    #[test]
    fn attention_cost_quadratic_in_horizon() {
        let short = model(4, 4);
        let long = model(4, 16);
        // 4× horizon: a purely linear model would scale exactly 4×; the
        // quadratic attention term must push it strictly beyond that.
        assert!(long.flops_per_forward(2) > 4.3 * short.flops_per_forward(2));
    }
}
