//! # st-models
//!
//! The spatiotemporal model zoo used by the paper's evaluation:
//!
//! - [`dcrnn`] — the original DCRNN (Li et al. 2018): dual random-walk
//!   diffusion convolution inside GRU gates, encoder–decoder seq2seq.
//! - [`pgt_dcrnn`] — PGT's lightweight DCRNN variant: a single diffusion
//!   convolution recurrent layer applied stepwise with a carried hidden
//!   state (§3 of the paper).
//! - [`a3tgcn`] — A3T-GCN: TGCN cell (sym-normalized graph convolution +
//!   GRU) with temporal attention pooling (§5.5, Table 6).
//! - [`stllm`] — an ST-LLM-style substitute: token/spatial/temporal
//!   embeddings feeding a small transformer encoder (§5.5, Fig 10).
//!
//! All models implement [`common::Seq2Seq`]: map a `[B, T, N, F]` history
//! window to a `[B, T, N, F_out]` forecast, which is exactly the
//! sequence-to-sequence contract index-batching exploits.

pub mod a3tgcn;
pub mod common;
pub mod dcrnn;
pub mod graph_ops;
pub mod metrics;
pub mod pgt_dcrnn;
pub mod stllm;

pub use a3tgcn::A3tGcn;
pub use common::{ModelConfig, Seq2Seq};
pub use dcrnn::Dcrnn;
pub use graph_ops::Support;
pub use pgt_dcrnn::PgtDcrnn;
pub use stllm::StLlm;
