//! Differentiable graph operations built on [`st_autograd::Tape::custom_op`].
//!
//! The one primitive every model here needs is the batched sparse×dense
//! product `S @ X[b]` with a sparse support matrix `S`; its backward pass is
//! `Sᵀ @ dY[b]`, so we precompute the transpose once per support.

use st_autograd::{Tape, Var};
use st_graph::Csr;
use std::sync::Arc;

/// A support matrix paired with its transpose (for the backward pass).
#[derive(Debug, Clone)]
pub struct Support {
    /// The support matrix `S` (e.g. a random-walk power).
    pub mat: Arc<Csr>,
    /// `Sᵀ`, used by the gradient.
    pub mat_t: Arc<Csr>,
}

impl Support {
    /// Wrap a CSR support, precomputing its transpose.
    pub fn new(mat: Csr) -> Self {
        let mat_t = mat.transpose();
        Support {
            mat: Arc::new(mat),
            mat_t: Arc::new(mat_t),
        }
    }

    /// Wrap a whole list of supports.
    pub fn wrap_all(mats: Vec<Csr>) -> Vec<Support> {
        mats.into_iter().map(Support::new).collect()
    }
}

/// Differentiable batched spmm: `y[b] = S @ x[b]` for `x: [B, N, C]`.
pub fn spmm_var(tape: &Tape, support: &Support, x: &Var) -> Var {
    let value = support
        .mat
        .spmm_batched(x.value())
        .expect("support and feature shapes agree");
    let st = support.mat_t.clone();
    tape.custom_op(&[x], value, move |g| {
        vec![st.spmm_batched(g).expect("transpose shapes agree")]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_autograd::ops;
    use st_tensor::Tensor;

    #[test]
    fn forward_matches_dense() {
        let dense = vec![0.0, 1.0, 0.5, 0.0];
        let s = Support::new(Csr::from_dense(2, 2, &dense));
        let tape = Tape::new();
        let x = tape.leaf(Tensor::arange(4).reshape([1, 2, 2]).unwrap());
        let y = spmm_var(&tape, &s, &x);
        // S @ X = [[0,1],[0.5,0]] @ [[0,1],[2,3]] = [[2,3],[0,0.5]]
        assert_eq!(y.value().to_vec(), vec![2.0, 3.0, 0.0, 0.5]);
    }

    #[test]
    fn gradient_is_transpose_spmm() {
        // f = sum(S @ x) => df/dx = S^T @ ones.
        let dense = vec![0.0, 2.0, 0.0, 0.0]; // single edge 0->1 weight 2
        let s = Support::new(Csr::from_dense(2, 2, &dense));
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([1, 2, 1]));
        let y = spmm_var(&tape, &s, &x);
        let loss = ops::sum_all(&y);
        let g = tape.backward(&loss);
        // S^T @ [1,1] = [[0,0],[2,0]] @ [1,1] = [0, 2]
        assert_eq!(g.get(&x).unwrap().to_vec(), vec![0.0, 2.0]);
    }

    #[test]
    fn finite_difference_check() {
        let dense = vec![0.5, 0.2, 0.0, 0.9];
        let s = Support::new(Csr::from_dense(2, 2, &dense));
        let x0 = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.4], [1, 2, 2]).unwrap();
        let f = |x: &Tensor| -> f32 {
            let t = Tape::new();
            let v = t.leaf(x.clone());
            let y = spmm_var(&t, &s, &v);
            st_tensor::ops::sum_all(&st_tensor::ops::square(y.value()))
        };
        // Analytic gradient of sum(y^2) = 2 S^T (S x).
        let tape = Tape::new();
        let v = tape.leaf(x0.clone());
        let y = spmm_var(&tape, &s, &v);
        let loss = ops::sum_all(&ops::square(&y));
        let grads = tape.backward(&loss);
        let analytic = grads.get(&v).unwrap().to_vec();
        let h = 1e-3f32;
        let base = x0.to_vec();
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += h;
            let mut minus = base.clone();
            minus[i] -= h;
            let fp = f(&Tensor::from_vec(plus, [1, 2, 2]).unwrap());
            let fm = f(&Tensor::from_vec(minus, [1, 2, 2]).unwrap());
            let numeric = (fp - fm) / (2.0 * h);
            assert!(
                (analytic[i] - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "index {i}: {} vs {numeric}",
                analytic[i]
            );
        }
    }
}
