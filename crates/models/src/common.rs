//! Shared model interfaces.
//!
//! Every model in the zoo is a **sequence-to-sequence** forecaster: it maps
//! a `[batch, horizon, nodes, features]` history window to a
//! `[batch, horizon, nodes, out_dim]` forecast. That uniform contract is
//! what makes index-batching "applicable to any model that operates on
//! spatiotemporal data in a sequence-to-sequence format" (§1).

use st_autograd::{Module, Tape, Var};
use st_tensor::Tensor;

/// Hyperparameters shared by the model zoo.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Input features per node per step.
    pub input_dim: usize,
    /// Output features per node per step (1 for speed/case forecasting).
    pub output_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of graph nodes.
    pub num_nodes: usize,
    /// Forecast horizon (both input and output window length).
    pub horizon: usize,
    /// Diffusion steps K for DCRNN-family models.
    pub diffusion_steps: usize,
    /// Recurrent layers (encoder/decoder depth for DCRNN).
    pub layers: usize,
}

impl ModelConfig {
    /// A small default suitable for scaled-down measured runs.
    pub fn small(num_nodes: usize, input_dim: usize, horizon: usize) -> Self {
        ModelConfig {
            input_dim,
            output_dim: 1,
            hidden: 16,
            num_nodes,
            horizon,
            diffusion_steps: 2,
            layers: 2,
        }
    }

    /// The paper-scale configuration (DCRNN defaults: hidden 64, K=2,
    /// 2 layers) used for paper-scale cost projection.
    pub fn paper(num_nodes: usize, input_dim: usize, horizon: usize) -> Self {
        ModelConfig {
            input_dim,
            output_dim: 1,
            hidden: 64,
            num_nodes,
            horizon,
            diffusion_steps: 2,
            layers: 2,
        }
    }
}

/// A sequence-to-sequence spatiotemporal forecaster.
pub trait Seq2Seq: Module {
    /// Forward pass: `x` is `[B, T, N, F]`, the result is `[B, T, N, out]`.
    fn forward(&self, tape: &Tape, x: &Tensor) -> Var;

    /// Forward pass over a **dynamic** graph: one diffusion-support set per
    /// input step (§7 "dynamic graphs with temporal signal"). Models whose
    /// topology is baked in ignore the per-step supports and fall back to
    /// the static [`Seq2Seq::forward`]; DCRNN-family models override this
    /// to swap diffusion operators per step while sharing gate weights.
    fn forward_dynamic(&self, tape: &Tape, x: &Tensor, per_step: &[&[crate::Support]]) -> Var {
        let _ = per_step;
        self.forward(tape, x)
    }

    /// Forward pass **without autograd**: runs the same computation as
    /// [`Seq2Seq::forward`] on a non-recording [`Tape::inference`], so no
    /// graph node or backward closure is allocated and no activation is
    /// retained. Values are bit-identical to the training-tape forward —
    /// the property the serving layer's snapshot round-trip tests pin.
    fn forward_inference(&self, x: &Tensor) -> Tensor {
        let tape = Tape::inference();
        self.forward(&tape, x).value().clone()
    }

    /// Stable display name.
    fn name(&self) -> &'static str;

    /// Estimated FLOPs for one *forward* pass over a batch of shape
    /// `[batch, horizon, nodes, ·]`. One training step costs ≈3× this
    /// (forward + backward). Drives the paper-scale runtime projection.
    fn flops_per_forward(&self, batch: usize) -> f64;
}

/// Validate the standard input shape, panicking with a clear message.
pub fn check_input(x: &Tensor, cfg: &ModelConfig, model: &str) {
    assert_eq!(x.rank(), 4, "{model}: input must be [B, T, N, F]");
    assert_eq!(x.dim(1), cfg.horizon, "{model}: horizon mismatch");
    assert_eq!(x.dim(2), cfg.num_nodes, "{model}: node count mismatch");
    assert_eq!(x.dim(3), cfg.input_dim, "{model}: feature dim mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_have_expected_defaults() {
        let s = ModelConfig::small(10, 2, 12);
        assert_eq!(s.hidden, 16);
        let p = ModelConfig::paper(11_160, 2, 12);
        assert_eq!(p.hidden, 64);
        assert_eq!(p.layers, 2);
    }

    #[test]
    #[should_panic(expected = "horizon mismatch")]
    fn check_input_catches_bad_horizon() {
        let cfg = ModelConfig::small(4, 1, 12);
        let x = Tensor::zeros([2, 6, 4, 1]);
        check_input(&x, &cfg, "test");
    }
}
