//! PGT-DCRNN: the lightweight single-layer stepwise variant (§3).
//!
//! As the paper describes, PGT's DCRNN "uses a single spatiotemporal
//! diffusion convolution layer and does not replicate the full behavior of
//! the original model". The paper's case-study extension processes the
//! input sequence stepwise, carrying a hidden state and emitting an output
//! at each step, so the prediction sequence matches the input length —
//! that is exactly what this module implements.

use crate::common::{check_input, ModelConfig, Seq2Seq};
use crate::dcrnn::cell::DcGruCell;
use crate::graph_ops::Support;
use st_autograd::{ops, Module, Param, Tape, Var};
use st_tensor::{random, Tensor};

/// Single-layer stepwise DCRNN, PGT style.
pub struct PgtDcrnn {
    cfg: ModelConfig,
    cell: DcGruCell,
    out_w: Param,
    out_b: Param,
}

impl PgtDcrnn {
    /// Build from diffusion supports and a seed.
    pub fn new(cfg: ModelConfig, supports: &[Support], seed: u64) -> Self {
        let mut rng = random::rng_from_seed(seed);
        let cell = DcGruCell::new("pgt.cell", supports, cfg.input_dim, cfg.hidden, &mut rng);
        let out_w = Param::new(
            "pgt.out.w",
            random::xavier_uniform(cfg.hidden, cfg.output_dim, &mut rng),
        );
        let out_b = Param::new("pgt.out.b", Tensor::zeros([cfg.output_dim]));
        PgtDcrnn {
            cfg,
            cell,
            out_w,
            out_b,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Forward over a **dynamic** graph: one support set per time step
    /// (paper §7 — "dynamic graphs with temporal signal"). Gate weights are
    /// shared across steps; only the diffusion operators change. Each
    /// `per_step` entry must have the same support count the model was
    /// built with.
    pub fn forward_dynamic(&self, tape: &Tape, x: &Tensor, per_step: &[&[Support]]) -> Var {
        check_input(x, &self.cfg, "PGT-DCRNN(dynamic)");
        assert_eq!(
            per_step.len(),
            self.cfg.horizon,
            "need one support set per time step"
        );
        let (b, t, n) = (x.dim(0), x.dim(1), x.dim(2));
        let mut h = tape.constant(self.cell.zero_state(b, n));
        let w = tape.param(&self.out_w);
        let bias = tape.param(&self.out_b);
        let mut outputs: Vec<Var> = Vec::with_capacity(t);
        for (step, step_supports) in per_step.iter().enumerate().take(t) {
            let xt = tape.constant(x.select(1, step).expect("step in range").contiguous());
            h = self.cell.step_with(tape, step_supports, &xt, &h);
            let out = ops::bias_act(&ops::bmm(&h, &w), &bias, ops::Activation::Identity); // [B, N, out]
            outputs.push(out);
        }
        let refs: Vec<&Var> = outputs.iter().collect();
        let stacked = ops::stack0(&refs); // [T, B, N, out]
        ops::permute(&stacked, &[1, 0, 2, 3])
    }
}

impl Module for PgtDcrnn {
    fn params(&self) -> Vec<Param> {
        let mut p = self.cell.params();
        p.push(self.out_w.clone());
        p.push(self.out_b.clone());
        p
    }
}

impl Seq2Seq for PgtDcrnn {
    fn forward(&self, tape: &Tape, x: &Tensor) -> Var {
        check_input(x, &self.cfg, "PGT-DCRNN");
        let (b, t, n) = (x.dim(0), x.dim(1), x.dim(2));
        let mut h = tape.constant(self.cell.zero_state(b, n));
        let w = tape.param(&self.out_w);
        let bias = tape.param(&self.out_b);
        let mut outputs: Vec<Var> = Vec::with_capacity(t);
        for step in 0..t {
            let xt = tape.constant(x.select(1, step).expect("step in range").contiguous());
            h = self.cell.step(tape, &xt, &h);
            let out = ops::bias_act(&ops::bmm(&h, &w), &bias, ops::Activation::Identity); // [B, N, out]
            outputs.push(out);
        }
        let refs: Vec<&Var> = outputs.iter().collect();
        let stacked = ops::stack0(&refs); // [T, B, N, out]
        ops::permute(&stacked, &[1, 0, 2, 3])
    }

    fn forward_dynamic(&self, tape: &Tape, x: &Tensor, per_step: &[&[Support]]) -> Var {
        PgtDcrnn::forward_dynamic(self, tape, x, per_step)
    }

    fn name(&self) -> &'static str {
        "PGT-DCRNN"
    }

    fn flops_per_forward(&self, batch: usize) -> f64 {
        let n = self.cfg.num_nodes;
        let t = self.cfg.horizon as f64;
        let proj = 2.0 * (batch * n * self.cfg.hidden * self.cfg.output_dim) as f64;
        t * (self.cell.flops(batch, n) + proj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_autograd::loss;
    use st_autograd::optim::{Adam, Optimizer};
    use st_graph::{diffusion_supports, generators::highway_corridor};

    fn model(nodes: usize, horizon: usize) -> PgtDcrnn {
        let net = highway_corridor(nodes, 1, 3);
        let supports = Support::wrap_all(diffusion_supports(&net.adjacency, 2));
        let cfg = ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 12,
            num_nodes: nodes,
            horizon,
            diffusion_steps: 2,
            layers: 1,
        };
        PgtDcrnn::new(cfg, &supports, 7)
    }

    #[test]
    fn forward_shape_matches_input_length() {
        let m = model(6, 4);
        let tape = Tape::new();
        let y = m.forward(&tape, &Tensor::ones([3, 4, 6, 1]));
        assert_eq!(y.value().dims(), &[3, 4, 6, 1]);
    }

    #[test]
    fn can_overfit_a_constant_mapping() {
        // Sanity: a few Adam steps on a fixed (x, y) pair must reduce loss
        // substantially — proves gradients are wired end to end.
        let m = model(4, 3);
        let x = st_tensor::random::uniform(
            [2, 3, 4, 1],
            -1.0,
            1.0,
            &mut st_tensor::random::rng_from_seed(3),
        );
        let target = Tensor::full([2, 3, 4, 1], 0.5);
        let mut opt = Adam::new(m.params(), 0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            opt.zero_grad();
            let tape = Tape::new();
            let pred = m.forward(&tape, &x);
            let tgt = tape.constant(target.clone());
            let l = loss::mae(&pred, &tgt);
            last = l.value().item();
            first.get_or_insert(last);
            let grads = tape.backward(&l);
            tape.accumulate_param_grads(&grads);
            opt.step();
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.35,
            "loss failed to drop: {first} -> {last}"
        );
    }

    #[test]
    fn dynamic_forward_with_static_supports_matches_static_forward() {
        // When every step uses the construction-time supports, the dynamic
        // path must be bit-identical to the static one.
        let net = highway_corridor(5, 1, 4);
        let supports = Support::wrap_all(diffusion_supports(&net.adjacency, 2));
        let cfg = ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 6,
            num_nodes: 5,
            horizon: 3,
            diffusion_steps: 2,
            layers: 1,
        };
        let m = PgtDcrnn::new(cfg, &supports, 9);
        let x = st_tensor::random::uniform(
            [2, 3, 5, 1],
            -1.0,
            1.0,
            &mut st_tensor::random::rng_from_seed(5),
        );
        let tape = Tape::new();
        let stat = m.forward(&tape, &x);
        let per_step: Vec<&[Support]> = (0..3).map(|_| supports.as_slice()).collect();
        let dynv = m.forward_dynamic(&tape, &x, &per_step);
        assert_eq!(stat.value().to_vec(), dynv.value().to_vec());
    }

    #[test]
    fn dynamic_forward_reacts_to_topology_change() {
        // Zeroing the graph at one step must change the output.
        let net = highway_corridor(5, 1, 4);
        let supports = Support::wrap_all(diffusion_supports(&net.adjacency, 2));
        let empty = Support::wrap_all(diffusion_supports(
            &st_graph::Adjacency::from_dense(5, vec![0.0; 25]),
            2,
        ));
        let cfg = ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 6,
            num_nodes: 5,
            horizon: 3,
            diffusion_steps: 2,
            layers: 1,
        };
        let m = PgtDcrnn::new(cfg, &supports, 9);
        let x = st_tensor::random::uniform(
            [1, 3, 5, 1],
            -1.0,
            1.0,
            &mut st_tensor::random::rng_from_seed(5),
        );
        let tape = Tape::new();
        let baseline = m.forward(&tape, &x).value().to_vec();
        let per_step: Vec<&[Support]> =
            vec![supports.as_slice(), empty.as_slice(), supports.as_slice()];
        let changed = m.forward_dynamic(&tape, &x, &per_step).value().to_vec();
        assert_ne!(baseline, changed, "topology change must affect predictions");
    }

    #[test]
    #[should_panic(expected = "one support set per time step")]
    fn dynamic_forward_rejects_wrong_step_count() {
        let net = highway_corridor(4, 1, 4);
        let supports = Support::wrap_all(diffusion_supports(&net.adjacency, 2));
        let cfg = ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 4,
            num_nodes: 4,
            horizon: 3,
            diffusion_steps: 2,
            layers: 1,
        };
        let m = PgtDcrnn::new(cfg, &supports, 1);
        let tape = Tape::new();
        let per_step: Vec<&[Support]> = vec![supports.as_slice()]; // 1 ≠ 3
        m.forward_dynamic(&tape, &Tensor::ones([1, 3, 4, 1]), &per_step);
    }

    #[test]
    fn forward_inference_is_bit_identical_and_tape_free() {
        let m = model(6, 4);
        let x = st_tensor::random::uniform(
            [3, 4, 6, 1],
            -1.0,
            1.0,
            &mut st_tensor::random::rng_from_seed(17),
        );
        let tape = Tape::new();
        let trained_path = m.forward(&tape, &x);
        let served_path = m.forward_inference(&x);
        assert_eq!(
            trained_path.value().to_vec(),
            served_path.to_vec(),
            "inference forward must match the training forward bitwise"
        );
        assert!(tape.activation_bytes(4) > 0, "training tape records");
    }

    #[test]
    fn flops_scale_with_horizon() {
        let short = model(6, 2);
        let long = model(6, 8);
        assert!(long.flops_per_forward(4) > 3.0 * short.flops_per_forward(4));
    }

    #[test]
    fn param_count_is_single_cell_plus_head() {
        let m = model(4, 3);
        // 3 dconv (w+b) + head (w+b) = 8.
        assert_eq!(m.params().len(), 8);
    }
}
