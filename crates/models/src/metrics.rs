//! Forecast evaluation metrics.
//!
//! The DCRNN line of work reports **masked** MAE / RMSE / MAPE — traffic
//! sensors emit 0.0 when offline, and those readings must not count as
//! ground truth — broken down **per forecast step** (15/30/60-minute
//! horizons in the paper's sources). This module provides those metrics
//! over `[B, T, N, ·]` prediction/target pairs, plus the standardized→
//! original-units rescaling used everywhere in the repo.

use st_tensor::Tensor;

/// Masking + unit configuration for metric computation.
#[derive(Debug, Clone, Copy)]
pub struct MetricConfig {
    /// Readings equal to this value (±`eps`) are excluded (sensor offline).
    pub null_value: Option<f32>,
    /// Comparison tolerance for null matching.
    pub eps: f32,
    /// Multiply errors by this factor (σ when inputs are standardized).
    pub scale: f32,
    /// Add this offset before MAPE's relative division (μ when
    /// standardized; MAE/RMSE are shift-invariant so only MAPE needs it).
    pub offset: f32,
}

impl Default for MetricConfig {
    fn default() -> Self {
        MetricConfig {
            null_value: None,
            eps: 1e-4,
            scale: 1.0,
            offset: 0.0,
        }
    }
}

impl MetricConfig {
    /// Metrics in original units for data standardized with `(mean, std)`.
    pub fn standardized(mean: f32, std: f32) -> Self {
        MetricConfig {
            null_value: None,
            eps: 1e-4,
            scale: std,
            offset: mean,
        }
    }

    /// Add null masking (e.g. `0.0` for offline traffic sensors, compared
    /// in original units).
    pub fn with_null(mut self, null: f32) -> Self {
        self.null_value = Some(null);
        self
    }
}

/// MAE / RMSE / MAPE over one (sub)tensor pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Mean absolute error (original units).
    pub mae: f32,
    /// Root mean squared error (original units).
    pub rmse: f32,
    /// Mean absolute percentage error, as a fraction (0.05 = 5%).
    pub mape: f32,
    /// Readings that survived the null mask.
    pub counted: usize,
}

/// Compute masked metrics over `pred` vs `target` (same shape).
pub fn evaluate(pred: &Tensor, target: &Tensor, cfg: &MetricConfig) -> Metrics {
    assert_eq!(pred.dims(), target.dims(), "pred/target shape mismatch");
    let p = pred.to_vec();
    let t = target.to_vec();
    let mut abs_sum = 0.0f64;
    let mut sq_sum = 0.0f64;
    let mut pct_sum = 0.0f64;
    let mut n = 0usize;
    // MAPE excludes near-zero targets (the relative error is undefined
    // there), so it needs its own denominator: dividing `pct_sum` by `n`
    // would bias MAPE low whenever small targets survive the null mask.
    let mut pct_n = 0usize;
    for (&pi, &ti) in p.iter().zip(t.iter()) {
        let t_orig = ti * cfg.scale + cfg.offset;
        if let Some(null) = cfg.null_value {
            if (t_orig - null).abs() <= cfg.eps {
                continue;
            }
        }
        let p_orig = pi * cfg.scale + cfg.offset;
        let err = (p_orig - t_orig) as f64;
        abs_sum += err.abs();
        sq_sum += err * err;
        if t_orig.abs() > cfg.eps {
            pct_sum += (err / t_orig as f64).abs();
            pct_n += 1;
        }
        n += 1;
    }
    let denom = n.max(1) as f64;
    Metrics {
        mae: (abs_sum / denom) as f32,
        rmse: (sq_sum / denom).sqrt() as f32,
        mape: (pct_sum / pct_n.max(1) as f64) as f32,
        counted: n,
    }
}

/// Metrics for one forecast step.
#[derive(Debug, Clone, Copy)]
pub struct HorizonMetrics {
    /// Forecast step (0-based; step `k` = `(k+1)·Δt` ahead).
    pub step: usize,
    /// Metrics at that step.
    pub metrics: Metrics,
}

/// Per-forecast-step breakdown over `[B, T, N, ·]` tensors — the
/// "15/30/60-minute" rows of DCRNN-style evaluations.
pub fn evaluate_per_horizon(
    pred: &Tensor,
    target: &Tensor,
    cfg: &MetricConfig,
) -> Vec<HorizonMetrics> {
    assert_eq!(pred.dims(), target.dims(), "pred/target shape mismatch");
    assert_eq!(pred.rank(), 4, "expected [B, T, N, F]");
    let horizon = pred.dim(1);
    (0..horizon)
        .map(|step| {
            let p = pred.select(1, step).expect("step in range").contiguous();
            let t = target.select(1, step).expect("step in range").contiguous();
            HorizonMetrics {
                step,
                metrics: evaluate(&p, &t, cfg),
            }
        })
        .collect()
}

/// Aggregate metrics over the full horizon plus the per-step breakdown.
#[derive(Debug, Clone)]
pub struct ForecastReport {
    /// Metrics over every step pooled together.
    pub overall: Metrics,
    /// One entry per forecast step.
    pub per_horizon: Vec<HorizonMetrics>,
}

/// Full report over `[B, T, N, ·]` tensors.
pub fn report(pred: &Tensor, target: &Tensor, cfg: &MetricConfig) -> ForecastReport {
    ForecastReport {
        overall: evaluate(pred, target, cfg),
        per_horizon: evaluate_per_horizon(pred, target, cfg),
    }
}

impl std::fmt::Display for ForecastReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "overall: MAE {:.4}  RMSE {:.4}  MAPE {:.2}%  (n={})",
            self.overall.mae,
            self.overall.rmse,
            self.overall.mape * 100.0,
            self.overall.counted
        )?;
        for h in &self.per_horizon {
            writeln!(
                f,
                "  step {:>2}: MAE {:.4}  RMSE {:.4}  MAPE {:.2}%",
                h.step + 1,
                h.metrics.mae,
                h.metrics.rmse,
                h.metrics.mape * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmasked_hand_example() {
        let pred = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let target = Tensor::from_slice(&[2.0, 2.0, 1.0, 8.0]);
        let m = evaluate(&pred, &target, &MetricConfig::default());
        // |e| = 1, 0, 2, 4 → MAE 7/4; e² = 1, 0, 4, 16 → RMSE sqrt(21/4).
        assert!((m.mae - 1.75).abs() < 1e-6);
        assert!((m.rmse - (21.0f32 / 4.0).sqrt()).abs() < 1e-6);
        // |e/t| = 1/2, 0, 2, 1/2 → MAPE 3/4.
        assert!((m.mape - 0.75).abs() < 1e-6);
        assert_eq!(m.counted, 4);
    }

    #[test]
    fn null_mask_excludes_offline_sensors() {
        let pred = Tensor::from_slice(&[1.0, 9.0, 3.0]);
        let target = Tensor::from_slice(&[2.0, 0.0, 1.0]);
        let cfg = MetricConfig::default().with_null(0.0);
        let m = evaluate(&pred, &target, &cfg);
        assert_eq!(m.counted, 2, "the 0.0 reading must be masked");
        assert!((m.mae - 1.5).abs() < 1e-6); // (1 + 2)/2
    }

    #[test]
    fn near_zero_targets_do_not_deflate_mape() {
        // Target 1e-6 is within eps of zero: it counts for MAE/RMSE but is
        // excluded from the relative error. MAPE must divide by the number
        // of readings that actually contributed (2), not all counted (3).
        let pred = Tensor::from_slice(&[1.5, 3.0, 0.5]);
        let target = Tensor::from_slice(&[1.0, 2.0, 1e-6]);
        let m = evaluate(&pred, &target, &MetricConfig::default());
        assert_eq!(m.counted, 3);
        // |e/t| = 0.5, 0.5 over TWO contributing readings → 0.5, not 1/3.
        assert!((m.mape - 0.5).abs() < 1e-6, "mape = {}", m.mape);
        // MAE still pools all three readings.
        assert!((m.mae - (0.5 + 1.0 + 0.5 - 1e-6) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn rmse_at_least_mae() {
        // Jensen: RMSE ≥ MAE always.
        let pred = Tensor::from_slice(&[0.3, -1.2, 5.5, 2.0, 0.0]);
        let target = Tensor::from_slice(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        let m = evaluate(&pred, &target, &MetricConfig::default());
        assert!(m.rmse >= m.mae);
    }

    #[test]
    fn standardized_rescaling_matches_manual() {
        // z-scores with μ = 60, σ = 10.
        let pred = Tensor::from_slice(&[0.0, 1.0]);
        let target = Tensor::from_slice(&[1.0, 1.0]);
        let cfg = MetricConfig::standardized(60.0, 10.0);
        let m = evaluate(&pred, &target, &cfg);
        assert!((m.mae - 5.0).abs() < 1e-5); // (10 + 0)/2 in original units
                                             // MAPE uses original units: errors 10, 0 against target 70.
        assert!((m.mape - (10.0 / 70.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn per_horizon_separates_steps() {
        // [B=1, T=2, N=2, F=1]: step 0 perfect, step 1 off by 2.
        let pred = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 2, 2, 1]).unwrap();
        let target = Tensor::from_vec(vec![1.0, 2.0, 5.0, 6.0], [1, 2, 2, 1]).unwrap();
        let hs = evaluate_per_horizon(&pred, &target, &MetricConfig::default());
        assert_eq!(hs.len(), 2);
        assert!((hs[0].metrics.mae - 0.0).abs() < 1e-6);
        assert!((hs[1].metrics.mae - 2.0).abs() < 1e-6);
    }

    #[test]
    fn error_grows_with_horizon_in_report() {
        // Later steps usually degrade; the report must expose that.
        let pred = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], [1, 4, 1, 1]).unwrap();
        let target = Tensor::from_vec(vec![1.0, 1.5, 2.5, 4.0], [1, 4, 1, 1]).unwrap();
        let r = report(&pred, &target, &MetricConfig::default());
        let maes: Vec<f32> = r.per_horizon.iter().map(|h| h.metrics.mae).collect();
        assert!(maes.windows(2).all(|w| w[1] >= w[0]), "{maes:?}");
        // Overall pools all steps.
        assert!((r.overall.mae - (0.0 + 0.5 + 1.5 + 3.0) / 4.0).abs() < 1e-6);
    }

    #[test]
    fn all_null_targets_yield_zero_counted() {
        let pred = Tensor::from_slice(&[1.0, 2.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let cfg = MetricConfig::default().with_null(0.0);
        let m = evaluate(&pred, &target, &cfg);
        assert_eq!(m.counted, 0);
        assert_eq!(m.mae, 0.0, "empty mask must not NaN");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([4]);
        evaluate(&a, &b, &MetricConfig::default());
    }

    #[test]
    fn display_renders_all_steps() {
        let pred = Tensor::zeros([1, 3, 2, 1]);
        let target = Tensor::ones([1, 3, 2, 1]);
        let r = report(&pred, &target, &MetricConfig::default());
        let s = format!("{r}");
        assert!(s.contains("step  1"));
        assert!(s.contains("step  3"));
        assert!(s.contains("overall"));
    }
}
