//! Property-based pinning of the kernel-backend bitwise contract: for
//! arbitrary (ragged, tiny, empty) shapes, the tiled backend's GEMM, bmm,
//! and fused elementwise kernels produce **bit-identical** `f32` buffers to
//! the reference backend. This is the invariant that lets the engine's
//! golden tests keep pinning train-loss bits while the backend underneath
//! is swapped freely (DESIGN.md §8).
//!
//! The backends are exercised as structs (not through the process-wide
//! dispatch), so these tests are independent of `ST_BACKEND` and of any
//! other test mutating the global selection.

use pgt_i::tensor::backend::{kernels_for, Activation, BackendKind, Kernels};
use proptest::prelude::*;

fn reference() -> &'static dyn Kernels {
    kernels_for(BackendKind::Reference)
}

fn tiled() -> &'static dyn Kernels {
    kernels_for(BackendKind::Tiled)
}

/// Deterministic mixed-sign values from a seed (xorshift, like the other
/// proptest files — cheap and shrink-friendly).
fn fill(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed as u64 | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32 / 1000.0) - 1.0
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tiled GEMM == reference GEMM, bit for bit, across ragged shapes that
    /// straddle the small-product fallback and the tile remainders
    /// (m % MR, n % NR, any k — including empty dims).
    #[test]
    fn tiled_matmul_bitwise_equals_reference(
        m in 0usize..70,
        k in 0usize..70,
        n in 0usize..70,
        seed in any::<u32>(),
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed.wrapping_add(1));
        let mut r = vec![0.0f32; m * n];
        let mut t = vec![0.0f32; m * n];
        reference().matmul(&a, &b, &mut r, m, k, n);
        tiled().matmul(&a, &b, &mut t, m, k, n);
        prop_assert_eq!(bits(&r), bits(&t), "({}, {}, {})", m, k, n);
    }

    /// Batched GEMM agrees in both rhs modes: one shared `[k,n]` weight
    /// (the seq2seq unroll) and a per-batch `[bs,k,n]` rhs.
    #[test]
    fn tiled_bmm_bitwise_equals_reference(
        bs in 0usize..5,
        m in 0usize..40,
        k in 0usize..40,
        n in 0usize..40,
        shared in any::<bool>(),
        seed in any::<u32>(),
    ) {
        let a = fill(bs * m * k, seed);
        let blen = if shared { k * n } else { bs * k * n };
        let b = fill(blen, seed.wrapping_add(2));
        let mut r = vec![0.0f32; bs * m * n];
        let mut t = vec![0.0f32; bs * m * n];
        reference().bmm(&a, &b, &mut r, bs, m, k, n, shared);
        tiled().bmm(&a, &b, &mut t, bs, m, k, n, shared);
        prop_assert_eq!(bits(&r), bits(&t), "({}, {}, {}, {}) shared={}", bs, m, k, n, shared);
    }

    /// The fused bias+activation tail matches the reference's two
    /// materializing passes bitwise for every activation and row width.
    #[test]
    fn fused_bias_act_bitwise_equals_reference(
        rows in 1usize..40,
        width in 1usize..33,
        which in 0u8..3,
        seed in any::<u32>(),
    ) {
        let act = match which {
            0 => Activation::Identity,
            1 => Activation::Sigmoid,
            _ => Activation::Tanh,
        };
        let z = fill(rows * width, seed);
        let bias = fill(width, seed.wrapping_add(3));
        let mut r = vec![0.0f32; z.len()];
        let mut t = vec![0.0f32; z.len()];
        reference().bias_act(&z, &bias, &mut r, act);
        tiled().bias_act(&z, &bias, &mut t, act);
        prop_assert_eq!(bits(&r), bits(&t), "{:?} {}x{}", act, rows, width);
    }

    /// The fused GRU blend matches the composed
    /// `(u*h) + (((u*-1)+1)*c)` expression bitwise.
    #[test]
    fn fused_gru_blend_bitwise_equals_reference(
        len in 0usize..200,
        seed in any::<u32>(),
    ) {
        let u = fill(len, seed);
        let h = fill(len, seed.wrapping_add(4));
        let c = fill(len, seed.wrapping_add(5));
        let mut r = vec![0.0f32; len];
        let mut t = vec![0.0f32; len];
        reference().gru_blend(&u, &h, &c, &mut r);
        tiled().gru_blend(&u, &h, &c, &mut t);
        prop_assert_eq!(bits(&r), bits(&t));
    }

    /// Non-finite values flow through both backends identically — the
    /// historical zero-skip that swallowed `0 × NaN` is pinned out.
    #[test]
    fn non_finite_propagation_agrees(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        poison_at in any::<u32>(),
        poison_inf in any::<bool>(),
        seed in any::<u32>(),
    ) {
        let a = fill(m * k, seed);
        let mut b = fill(k * n, seed.wrapping_add(6));
        let idx = poison_at as usize % b.len();
        b[idx] = if poison_inf { f32::INFINITY } else { f32::NAN };
        let mut r = vec![0.0f32; m * n];
        let mut t = vec![0.0f32; m * n];
        reference().matmul(&a, &b, &mut r, m, k, n);
        tiled().matmul(&a, &b, &mut t, m, k, n);
        prop_assert_eq!(bits(&r), bits(&t));
        // The poisoned column's outputs must be non-finite in both.
        let col = idx % n;
        for i in 0..m {
            prop_assert!(!r[i * n + col].is_finite(), "row {} col {}", i, col);
        }
    }
}
