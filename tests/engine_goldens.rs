//! Engine-equivalence goldens.
//!
//! Per-epoch losses captured from the **pre-refactor inline epoch loops**
//! (the six hand-copied loops that predated `pgt_index::engine`), at fixed
//! seeds, after the ragged-`global_stripe` fix. The ported `DistDataPlane`
//! implementations must reproduce them **bit-for-bit**: the engine
//! refactor moved code, not numerics.
//!
//! If an intentional numerics change ever lands (new shuffle, new loss),
//! re-capture these by printing `train_loss`/`val_mae` from the runners at
//! the configs below.

use pgt_i::core::baseline_ddp::run_baseline_ddp;
use pgt_i::core::dist_index::{run_distributed_index, DistConfig};
use pgt_i::core::dynamic_index::{train_dynamic, DynamicTrainConfig};
use pgt_i::core::gen_dist_index::run_generalized;
use pgt_i::core::partitioned::{run_partitioned, PartitionStrategy, PartitionedConfig};
use pgt_i::core::workflow::pgt_dcrnn_factory;
use pgt_i::data::datasets::{DatasetKind, DatasetSpec};
use pgt_i::data::synthetic;
use pgt_i::graph::diffusion_supports;
use pgt_i::models::{ModelConfig, PgtDcrnn, Support};

/// The pipelined-engine sweep every golden must survive unchanged: the
/// legacy flat synchronous reduce, tiny buckets (many per step — maximal
/// pipelining), and tiny buckets with prefetch. Overlap moves modeled
/// time only; one bit of drift in a loss is a determinism bug.
const OVERLAP_VARIANTS: [(Option<usize>, bool); 3] =
    [(None, false), (Some(512), false), (Some(512), true)];

fn assert_epochs(
    name: &str,
    epochs: &[pgt_i::core::dist_index::DistEpochStats],
    golden: &[(f32, f32)],
) {
    assert_eq!(epochs.len(), golden.len(), "{name}: epoch count");
    for (e, &(loss, val)) in epochs.iter().zip(golden) {
        assert_eq!(
            e.train_loss.to_bits(),
            loss.to_bits(),
            "{name} epoch {}: train {} vs golden {loss}",
            e.epoch,
            e.train_loss
        );
        assert_eq!(
            e.val_mae.to_bits(),
            val.to_bits(),
            "{name} epoch {}: val {} vs golden {val}",
            e.epoch,
            e.val_mae
        );
    }
}

#[test]
fn local_copy_plane_reproduces_the_inline_dist_index_loop() {
    let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.35);
    let sig = synthetic::generate(&spec, 13);
    for (cap, prefetch) in OVERLAP_VARIANTS {
        let mut cfg = DistConfig::new(2, 3, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.grad_bucket_bytes = cap;
        cfg.prefetch = prefetch;
        let r = run_distributed_index(&sig, &cfg, pgt_dcrnn_factory(&sig, spec.horizon, 8, 42));
        assert_epochs(
            &format!("dist_index[{cap:?}/{prefetch}]"),
            &r.epochs,
            &[
                (0.6047219, 0.5622681),
                (0.39428508, 0.29349127),
                (0.37147808, 0.18459678),
            ],
        );
        assert_eq!(r.data_plane_bytes, 0, "full local copies move no samples");
    }
}

#[test]
fn data_svc_plane_reproduces_the_inline_baseline_ddp_loop() {
    let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.35);
    let sig = synthetic::generate(&spec, 13);
    for (cap, prefetch) in OVERLAP_VARIANTS {
        let mut cfg = DistConfig::new(2, 3, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.grad_bucket_bytes = cap;
        cfg.prefetch = prefetch;
        let r = run_baseline_ddp(&sig, &cfg, |_| {
            let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
            Box::new(PgtDcrnn::new(
                ModelConfig {
                    input_dim: 1,
                    output_dim: 1,
                    hidden: 8,
                    num_nodes: sig.num_nodes(),
                    horizon: spec.horizon,
                    diffusion_steps: 2,
                    layers: 1,
                },
                &supports,
                42,
            ))
        });
        assert_epochs(
            &format!("baseline_ddp[{cap:?}/{prefetch}]"),
            &r.epochs,
            &[
                (0.602124, 0.5803667),
                (0.38723648, 0.29158267),
                (0.36405236, 0.18627615),
            ],
        );
        // The data-plane ledger is part of the contract too: overlap hides
        // time, never traffic.
        assert_eq!(r.data_plane_bytes, 46368, "on-demand fetch traffic");
    }
}

#[test]
fn halo_entry_plane_reproduces_the_inline_generalized_loop() {
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(0.012);
    let sig = synthetic::generate(&spec, 31);
    for (cap, prefetch) in OVERLAP_VARIANTS {
        let mut cfg = DistConfig::new(2, 2, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.time_period = Some(spec.period);
        cfg.grad_bucket_bytes = cap;
        cfg.prefetch = prefetch;
        let r = run_generalized(&sig, &cfg, pgt_dcrnn_factory(&sig, spec.horizon, 8, 42));
        // Re-captured after the per-feature StandardScaler fix: this config
        // augments with time-of-day, whose [0,1) channel used to contaminate
        // the scalar speed statistics (and therefore every standardized loss).
        assert_epochs(
            &format!("generalized[{cap:?}/{prefetch}]"),
            &r.epochs,
            &[(0.50323284, 5.0863705), (0.38060495, 5.4412193)],
        );
        assert_eq!(r.data_plane_bytes, 736, "setup halo reads only");
    }
}

#[test]
fn dynamic_plane_reproduces_the_inline_dynamic_loop() {
    let sig = pgt_i::data::dynamic::synthetic_dynamic_traffic(6, 80, 7);
    let cfg = DynamicTrainConfig {
        epochs: 3,
        ..Default::default()
    };
    let (_, stats) = train_dynamic(&sig, 4, &cfg);
    let golden = [
        (0.50047874f32, 3.724125f32),
        (0.29698554, 3.4272969),
        (0.28425804, 3.1600816),
    ];
    assert_eq!(stats.len(), golden.len());
    for (e, &(loss, val)) in stats.iter().zip(&golden) {
        assert_eq!(e.train_loss.to_bits(), loss.to_bits(), "epoch {}", e.epoch);
        assert_eq!(e.val_mae.to_bits(), val.to_bits(), "epoch {}", e.epoch);
    }
}

#[test]
fn partitioned_plane_reproduces_the_sequential_trainer_loop() {
    // The pre-engine runner trained partitions sequentially through the
    // single-worker Trainer; the engine trains them concurrently as
    // independent ranks. Same shuffles, same seeds ⇒ identical MAE.
    let net = pgt_i::graph::generators::highway_corridor(24, 1, 11);
    let sig = synthetic::traffic::generate(&net, 220, 288, 11);
    let mut cfg = PartitionedConfig::new(2, 4);
    cfg.epochs = 2;
    cfg.batch_size = 4;
    // Pin the strategy the golden was captured under (the config default
    // moved to the multilevel partitioner afterwards).
    cfg.strategy = PartitionStrategy::GreedyBfs;
    let r = run_partitioned(&sig, &cfg);
    assert_eq!(r.combined_val_mae.to_bits(), 2.156524f32.to_bits());
    let vals: Vec<u32> = r.parts.iter().map(|p| p.val_mae.to_bits()).collect();
    assert_eq!(vals, vec![2.8321512f32.to_bits(), 1.4808966f32.to_bits()]);
}
