//! Property-based tests for incremental dirty-boundary re-partitioning:
//! empty deltas are bit-identical no-ops, repairs hold balance and exact
//! cut state across arbitrary mutation sequences, the drift invariant
//! bounds modeled halo bytes, and the timeline's incremental policy agrees
//! with the legacy full path on segment structure.

use pgt_i::core::dynamic_index::{partition_timeline, partition_timeline_with};
use pgt_i::data::dynamic::{dynamic_signal_from_deltas, DynamicGraphTemporalSignal};
use pgt_i::graph::partition::incremental::{
    GraphDelta, IncrementalConfig, IncrementalPartitioner, RepartitionPolicy, SparseGraph,
};
use pgt_i::graph::PartitionerKind;
use pgt_i::tensor::Tensor;
use proptest::prelude::*;
use proptest::strategy::Just;

/// An arbitrary sparse graph: `n` nodes, a connected ring backbone (so
/// region growing always covers), plus random chords.
fn arb_graph() -> impl Strategy<Value = SparseGraph> {
    (6usize..28, any::<u64>()).prop_map(|(n, seed)| {
        let mut edges: Vec<(usize, usize, f32)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        let mut state = seed | 1;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % n as u64) as usize;
            let v = ((state >> 17) % n as u64) as usize;
            if u != v {
                edges.push((u, v, 0.5 + (state % 4) as f32 * 0.5));
            }
        }
        SparseGraph::from_edges(n, &edges)
    })
}

/// An arbitrary mutation sequence over a graph that starts at `n` nodes:
/// each delta mixes edge updates (add / reweight / remove) with occasional
/// node arrivals, and may reference its own arrivals.
fn arb_deltas(n: usize) -> impl Strategy<Value = Vec<GraphDelta>> {
    proptest::collection::vec(
        (
            0usize..2, // nodes arriving with this delta
            proptest::collection::vec((any::<u32>(), 0usize..3), 1..8),
        ),
        1..6,
    )
    .prop_map(move |raw| {
        let mut nodes = n;
        raw.into_iter()
            .map(|(added, ops)| {
                let reach = nodes + added;
                let edges = ops
                    .into_iter()
                    .filter_map(|(pick, kind)| {
                        let u = pick as usize % reach;
                        let v = (pick as usize / reach) % reach;
                        let w = [0.0, 0.75, 1.5][kind];
                        (u != v).then_some((u, v, w))
                    })
                    .collect();
                nodes += added;
                GraphDelta {
                    added_nodes: added,
                    edges,
                }
            })
            .collect()
    })
}

/// A graph plus a mutation sequence sized to it.
fn arb_graph_and_deltas() -> impl Strategy<Value = (SparseGraph, Vec<GraphDelta>)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.num_nodes();
        (Just(g), arb_deltas(n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An empty delta is a bit-identical no-op: assignment, cut state,
    /// and modeled halo bytes all unchanged, and nothing is rebuilt.
    #[test]
    fn empty_delta_is_identity(g in arb_graph(), k in 2usize..5) {
        let mut inc = IncrementalPartitioner::partition_fresh(
            g, k, IncrementalConfig::default(),
        );
        let before_assignment = inc.assignment().to_vec();
        let before_halo = inc.halo_bytes();
        let stats = inc.apply_delta(&GraphDelta::default());
        prop_assert!(!stats.rebuilt);
        prop_assert_eq!(stats.moves, 0);
        prop_assert_eq!(stats.dirty_nodes, 0);
        prop_assert_eq!(inc.assignment(), &before_assignment[..]);
        prop_assert_eq!(inc.halo_bytes(), before_halo);
    }

    /// Across arbitrary mutation sequences the repair keeps (a) every part
    /// within the configured balance cap, (b) the incrementally-maintained
    /// cut state exactly equal to a dense recompute, and (c) modeled halo
    /// bytes within `(1 + drift) ×` the last full solve — the drift
    /// invariant the fallback enforces.
    #[test]
    fn repair_holds_balance_cut_state_and_drift(
        (g, deltas) in arb_graph_and_deltas(),
        k in 2usize..5,
    ) {
        let cfg = IncrementalConfig::default();
        let mut inc = IncrementalPartitioner::partition_fresh(g, k, cfg);
        for delta in &deltas {
            inc.apply_delta(delta);
            let n = inc.graph().num_nodes();
            let per = n.div_ceil(k);
            let cap = per.max((cfg.balance * per as f64).ceil() as usize);
            for (p, &size) in inc.part_sizes().iter().enumerate() {
                prop_assert!(
                    size <= cap,
                    "part {} holds {} nodes, cap {}", p, size, cap
                );
            }
            prop_assert_eq!(
                inc.cut_neighbors(),
                inc.partitioning()
                    .cut_neighbors(&inc.graph().to_adjacency()),
                "incremental cut state must match a dense recompute"
            );
            let bound = ((1.0 + cfg.drift) * inc.baseline_halo_bytes() as f64).ceil() as u64;
            prop_assert!(
                inc.halo_bytes() <= bound,
                "halo {} exceeds drift bound {}", inc.halo_bytes(), bound
            );
        }
    }

    /// Zero drift forces a rebuild on *any* degradation past the last full
    /// solve, so repaired halo bytes track a from-scratch solve of the
    /// current graph within the default 10% drift allowance — the
    /// acceptance bound the `ablation_dynamic` bench asserts at city
    /// scale, plus a one-cut-neighbor allowance — at 6–28 nodes a single
    /// boundary node can exceed 10% of total halo on its own. (Exact
    /// equality is not guaranteed: the baseline is the last full solve,
    /// and edge *removals* can make a fresh solve cheaper than any
    /// bounded local repair.)
    #[test]
    fn zero_drift_tracks_from_scratch_quality(
        (g, deltas) in arb_graph_and_deltas(),
        k in 2usize..5,
    ) {
        let cfg = IncrementalConfig { drift: 0.0, ..IncrementalConfig::default() };
        let unit = cfg.cost.reads_per_cut_neighbor() * cfg.cost.row_bytes;
        let mut inc = IncrementalPartitioner::partition_fresh(g, k, cfg);
        for delta in &deltas {
            let stats = inc.apply_delta(delta);
            let fresh = IncrementalPartitioner::partition_fresh(
                inc.graph().clone(), k, cfg,
            );
            let bound = (1.10 * fresh.halo_bytes() as f64).ceil() as u64 + unit;
            prop_assert!(
                stats.halo_bytes <= bound,
                "drift-0 repair halo {} exceeds 1.10 × from-scratch {} + one cut neighbor",
                stats.halo_bytes, fresh.halo_bytes()
            );
        }
    }

    /// The incremental timeline policy produces the same segment
    /// boundaries as the legacy full path, seeds entry 0 identically, and
    /// a delta-free (frozen) timeline yields exactly one shared segment.
    #[test]
    fn timeline_policies_agree_on_structure(
        nodes in 4usize..8,
        frozen_len in 3usize..7,
        seed in any::<u64>(),
    ) {
        let net = pgt_i::graph::generators::highway_corridor(nodes, 1, seed);
        // Frozen stretch: cloned adjacencies share one buffer.
        let frozen = DynamicGraphTemporalSignal::new(
            Tensor::zeros([frozen_len, nodes, 1]),
            vec![net.adjacency.clone(); frozen_len],
        );
        for policy in [RepartitionPolicy::Full, RepartitionPolicy::incremental()] {
            let segs = partition_timeline_with(
                &frozen, 2, PartitionerKind::Multilevel, 2, policy,
            );
            prop_assert_eq!(segs.len(), 1, "frozen topology: one segment");
        }
        // A mutating chain: both policies re-partition at the same entries
        // and agree on the entry-0 solve.
        let deltas = vec![
            GraphDelta { added_nodes: 0, edges: vec![(0, nodes - 1, 0.9)] },
            GraphDelta { added_nodes: 0, edges: vec![] },
            GraphDelta { added_nodes: 0, edges: vec![(0, nodes - 1, 0.0)] },
        ];
        let sig = dynamic_signal_from_deltas(
            &net.adjacency,
            &deltas,
            Tensor::zeros([4, nodes, 1]),
        );
        let full = partition_timeline(&sig, 2, PartitionerKind::Multilevel, 2);
        let inc = partition_timeline_with(
            &sig, 2, PartitionerKind::Multilevel, 2, RepartitionPolicy::incremental(),
        );
        prop_assert_eq!(full.len(), 3, "entry 0 + two real mutations");
        prop_assert_eq!(inc.len(), full.len());
        for (a, b) in inc.iter().zip(&full) {
            prop_assert_eq!(a.start_entry, b.start_entry);
        }
        prop_assert_eq!(
            inc[0].partitioning.assignment(),
            full[0].partitioning.assignment()
        );
    }
}
