//! Out-of-core storage invariants, property-based and end-to-end:
//!
//! - chunked-lossless row reads are bit-identical to the dense tensor for
//!   arbitrary shapes, chunk sizes, cache ceilings, and read patterns;
//! - `IndexDataset` batches are storage-invariant bit for bit;
//! - all five engine data planes (local-copy, data-service, halo-entry,
//!   partitioned, dynamic) produce bit-identical training trajectories
//!   under `StorageSpec::Chunked` lossless vs `StorageSpec::InMemory`.

use pgt_i::core::baseline_ddp::run_baseline_ddp;
use pgt_i::core::dist_index::{run_distributed_index, DistConfig, DistRunResult};
use pgt_i::core::dynamic_index::{train_dynamic, DynamicTrainConfig};
use pgt_i::core::gen_dist_index::run_generalized;
use pgt_i::core::partitioned::{run_partitioned, PartitionedConfig};
use pgt_i::core::workflow::pgt_dcrnn_factory;
use pgt_i::core::IndexDataset;
use pgt_i::data::datasets::{DatasetKind, DatasetSpec};
use pgt_i::data::dynamic::synthetic_dynamic_traffic;
use pgt_i::data::signal::StaticGraphTemporalSignal;
use pgt_i::data::splits::SplitRatios;
use pgt_i::data::storage::{ChunkedSpec, RowStore, SignalStorage, StorageSpec};
use pgt_i::data::synthetic;
use pgt_i::graph::{diffusion_supports, Adjacency};
use pgt_i::models::{ModelConfig, PgtDcrnn, Seq2Seq, Support};
use pgt_i::tensor::Tensor;
use proptest::prelude::*;

fn xorshift_vals(n: usize, seed: u32) -> Vec<f32> {
    let mut state = seed as u64 | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f32 / 100.0 - 10.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lossless chunked reads reproduce the dense tensor bit for bit:
    /// contiguous ranges (including empty and chunk-straddling ones) and
    /// arbitrary gathers, under arbitrary chunk sizes and cache ceilings
    /// small enough to force evictions mid-read.
    #[test]
    fn chunked_lossless_reads_are_bit_identical(
        entries in 1usize..70,
        width in 1usize..8,
        chunk in 1usize..24,
        cache_chunks in 1usize..4,
        seed in any::<u32>(),
        lo_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let vals = xorshift_vals(entries * width, seed);
        let dense = Tensor::from_vec(vals.clone(), [entries, width]).unwrap();
        let spec = ChunkedSpec::new(chunk)
            .with_cache_bytes((cache_chunks * chunk * width * 4) as u64);
        let store = SignalStorage::from_tensor_spec(
            dense.clone(),
            StorageSpec::Chunked(spec),
        );

        let lo = ((entries as f64) * lo_frac) as usize;
        let len = (((entries - lo) as f64) * len_frac) as usize;
        let (got, _) = store.read_rows_quoted(lo..lo + len);
        let want: Vec<f32> = vals[lo * width..(lo + len) * width].to_vec();
        let got = got.to_vec();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }

        // A scattered gather, ids derived from the same seed.
        let ids: Vec<usize> = (0..entries.min(9))
            .map(|i| (i * 7 + seed as usize) % entries)
            .collect();
        let (gathered, _) = store.gather_rows_quoted(&ids);
        let gathered = gathered.to_vec();
        for (k, &r) in ids.iter().enumerate() {
            for c in 0..width {
                prop_assert_eq!(
                    gathered[k * width + c].to_bits(),
                    vals[r * width + c].to_bits()
                );
            }
        }
    }

    /// `IndexDataset` batches — scaler fit + transform + window assembly —
    /// are storage-invariant bit for bit, whatever the chunk geometry.
    #[test]
    fn index_dataset_batches_are_storage_invariant(
        entries in 12usize..48,
        nodes in 1usize..5,
        features in 1usize..3,
        horizon in 2usize..5,
        chunk in 1usize..17,
        seed in any::<u32>(),
    ) {
        let vals = xorshift_vals(entries * nodes * features, seed);
        let adj = Adjacency::from_dense(nodes, vec![1.0; nodes * nodes]);
        let data = Tensor::from_vec(vals, [entries, nodes, features]).unwrap();
        let sig = StaticGraphTemporalSignal::new(data, adj);

        let mem = IndexDataset::from_signal(&sig, horizon, SplitRatios::default(), None);
        let chunked = IndexDataset::from_signal(
            &sig.rechunk(StorageSpec::Chunked(ChunkedSpec::new(chunk))),
            horizon,
            SplitRatios::default(),
            None,
        );
        let ids: Vec<usize> = (0..mem.num_snapshots()).step_by(2).collect();
        let (xm, ym) = mem.batch(&ids);
        let (xc, yc) = chunked.batch(&ids);
        for (a, b) in xm.to_vec().iter().zip(xc.to_vec().iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in ym.to_vec().iter().zip(yc.to_vec().iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

// ───────────────────── engine-plane bit-identity ─────────────────────

fn setup() -> (DatasetSpec, StaticGraphTemporalSignal) {
    let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.35);
    (spec.clone(), synthetic::generate(&spec, 13))
}

fn ddp_model(sig: &StaticGraphTemporalSignal, horizon: usize) -> Box<dyn Seq2Seq> {
    let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
    Box::new(PgtDcrnn::new(
        ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 8,
            num_nodes: sig.num_nodes(),
            horizon,
            diffusion_steps: 2,
            layers: 1,
        },
        &supports,
        42,
    ))
}

fn tiny_chunked() -> StorageSpec {
    // Small chunks + a cache of only a few chunks: every epoch cycles the
    // cache, so the bit-identity claim covers eviction/re-read paths too.
    StorageSpec::Chunked(ChunkedSpec::new(8).with_cache_bytes(16 * 1024))
}

fn assert_runs_bit_identical(a: &DistRunResult, b: &DistRunResult, what: &str) {
    assert_eq!(a.epochs.len(), b.epochs.len(), "{what}: epoch count");
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(
            ea.train_loss.to_bits(),
            eb.train_loss.to_bits(),
            "{what}: train loss epoch {}",
            ea.epoch
        );
        assert_eq!(
            ea.val_mae.to_bits(),
            eb.val_mae.to_bits(),
            "{what}: val mae epoch {}",
            ea.epoch
        );
    }
}

#[test]
fn local_copy_plane_is_bitwise_storage_invariant() {
    let (spec, sig) = setup();
    let mut cfg = DistConfig::new(2, 2, spec.horizon);
    cfg.batch_per_worker = 4;
    let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, 42);
    let mem = run_distributed_index(&sig, &cfg, &factory);
    cfg.storage = tiny_chunked();
    let chunked = run_distributed_index(&sig, &cfg, &factory);
    assert_runs_bit_identical(&mem, &chunked, "local-copy plane");
}

#[test]
fn datasvc_plane_is_bitwise_storage_invariant() {
    let (spec, sig) = setup();
    let mut cfg = DistConfig::new(2, 2, spec.horizon);
    cfg.batch_per_worker = 4;
    let mem = run_baseline_ddp(&sig, &cfg, |_| ddp_model(&sig, spec.horizon));
    cfg.storage = tiny_chunked();
    let chunked = run_baseline_ddp(&sig, &cfg, |_| ddp_model(&sig, spec.horizon));
    assert_runs_bit_identical(&mem, &chunked, "data-service plane");
    // The remote-byte ledger is also storage-invariant under Lossless.
    assert_eq!(mem.data_plane_bytes, chunked.data_plane_bytes);
}

#[test]
fn halo_entry_plane_is_bitwise_storage_invariant() {
    let (spec, sig) = setup();
    let mut cfg = DistConfig::new(2, 2, spec.horizon);
    cfg.batch_per_worker = 4;
    let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, 42);
    let mem = run_generalized(&sig, &cfg, &factory);
    cfg.storage = tiny_chunked();
    let chunked = run_generalized(&sig, &cfg, &factory);
    assert_runs_bit_identical(&mem, &chunked, "halo-entry plane");
    assert_eq!(mem.data_plane_bytes, chunked.data_plane_bytes);
}

#[test]
fn partitioned_plane_is_bitwise_storage_invariant() {
    let (spec, sig) = setup();
    let mut cfg = PartitionedConfig::new(2, spec.horizon);
    cfg.epochs = 2;
    let mem = run_partitioned(&sig, &cfg);
    cfg.storage = tiny_chunked();
    let chunked = run_partitioned(&sig, &cfg);
    assert_eq!(
        mem.combined_val_mae.to_bits(),
        chunked.combined_val_mae.to_bits(),
        "partitioned plane: combined val MAE"
    );
    for (a, b) in mem.parts.iter().zip(&chunked.parts) {
        assert_eq!(a.val_mae.to_bits(), b.val_mae.to_bits(), "part {}", a.part);
    }
}

#[test]
fn dynamic_plane_is_bitwise_storage_invariant() {
    let sig = synthetic_dynamic_traffic(6, 60, 5);
    let mut cfg = DynamicTrainConfig {
        epochs: 2,
        ..Default::default()
    };
    let (_, mem) = train_dynamic(&sig, 4, &cfg);
    cfg.storage = tiny_chunked();
    let (_, chunked) = train_dynamic(&sig, 4, &cfg);
    assert_eq!(mem.len(), chunked.len());
    for (a, b) in mem.iter().zip(&chunked) {
        assert_eq!(
            a.train_loss.to_bits(),
            b.train_loss.to_bits(),
            "dynamic plane: train loss epoch {}",
            a.epoch
        );
        assert_eq!(
            a.val_mae.to_bits(),
            b.val_mae.to_bits(),
            "dynamic plane: val mae epoch {}",
            a.epoch
        );
    }
}

#[test]
fn wire_codecs_shrink_the_ledger_without_breaking_training() {
    let (spec, sig) = setup();
    let mut cfg = DistConfig::new(2, 2, spec.horizon);
    cfg.batch_per_worker = 4;
    let raw = run_baseline_ddp(&sig, &cfg, |_| ddp_model(&sig, spec.horizon));
    cfg.wire_codec = pgt_i::dist::WireCodec::F16;
    let f16 = run_baseline_ddp(&sig, &cfg, |_| ddp_model(&sig, spec.horizon));
    assert_eq!(
        f16.data_plane_bytes * 2,
        raw.data_plane_bytes,
        "F16 halves every payload exactly"
    );
    let drift = (f16.best_val_mae() - raw.best_val_mae()).abs() / raw.best_val_mae().max(1e-6);
    assert!(drift < 0.05, "F16 val-MAE drift {drift} out of bounds");
}
