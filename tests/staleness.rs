//! Bounded-staleness gradient sync: determinism, the `s = 0` equivalence,
//! the age bound, and the modeled-time win under injected stragglers.

use pgt_i::core::dist_index::{run_distributed_index, DistConfig, DistRunResult};
use pgt_i::core::workflow::pgt_dcrnn_factory;
use pgt_i::data::datasets::{DatasetKind, DatasetSpec};
use pgt_i::data::signal::StaticGraphTemporalSignal;
use pgt_i::data::synthetic;
use pgt_i::device::{OverlapLedger, SimClock};
use pgt_i::dist::ddp::GradBuckets;
use pgt_i::dist::launch::run_workers;
use pgt_i::dist::staleness::StalenessWindow;
use pgt_i::dist::topology::ClusterTopology;
use pgt_i::tensor::Tensor;
use proptest::prelude::*;

fn setup() -> (DatasetSpec, StaticGraphTemporalSignal) {
    let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.3);
    (spec.clone(), synthetic::generate(&spec, 13))
}

fn run(world: usize, staleness: usize, skew: f64, epochs: usize) -> DistRunResult {
    let (spec, sig) = setup();
    let mut cfg = DistConfig::new(world, epochs, spec.horizon);
    cfg.batch_per_worker = 2;
    cfg.staleness = staleness;
    cfg.straggler_skew = skew;
    let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, 42);
    run_distributed_index(&sig, &cfg, &factory)
}

#[test]
fn straggler_skew_never_touches_numerics_at_staleness_zero() {
    // The synchronous path under an injected straggler ramp: modeled time
    // stretches, every reported number stays bit-identical.
    let clean = run(2, 0, 0.0, 2);
    let skewed = run(2, 0, 0.6, 2);
    for (a, b) in clean.epochs.iter().zip(&skewed.epochs) {
        assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
        assert_eq!(a.val_mae.to_bits(), b.val_mae.to_bits());
        assert_eq!((a.stale_steps_applied, a.fence_stalls), (0, 0));
        assert_eq!((b.stale_steps_applied, b.fence_stalls), (0, 0));
    }
    assert!(
        skewed.sim_total_secs > clean.sim_total_secs,
        "the straggler ramp must stretch modeled time: {} vs {}",
        skewed.sim_total_secs,
        clean.sim_total_secs
    );
}

#[test]
fn bounded_staleness_is_deterministic_and_applies_stale_gradients() {
    let a = run(2, 1, 0.4, 2);
    let b = run(2, 1, 0.4, 2);
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(
            ea.train_loss.to_bits(),
            eb.train_loss.to_bits(),
            "modeled-time policies must stay reproducible"
        );
        assert_eq!(ea.val_mae.to_bits(), eb.val_mae.to_bits());
        assert_eq!(ea.stale_steps_applied, eb.stale_steps_applied);
        assert_eq!(ea.fence_stalls, eb.fence_stalls);
    }
    assert!(
        a.epochs.iter().any(|e| e.stale_steps_applied > 0),
        "under skew, s = 1 must actually defer applications: {:?}",
        a.epochs
            .iter()
            .map(|e| e.stale_steps_applied)
            .collect::<Vec<_>>()
    );
    assert!(a.best_val_mae().is_finite(), "and still learn");
}

#[test]
fn bounded_staleness_outruns_the_synchronous_path_under_stragglers() {
    // The tentpole claim, in miniature (the full sweep lives in
    // `ablation_staleness`): at world 4 under a straggler ramp, riding out
    // the skew inside the staleness window beats the per-step rendezvous,
    // and small-s convergence stays in the same neighborhood.
    let sync = run(4, 0, 0.5, 2);
    let stale = run(4, 1, 0.5, 2);
    assert!(
        stale.sim_total_secs < sync.sim_total_secs,
        "s=1 must beat s=0 under skew: {} vs {}",
        stale.sim_total_secs,
        sync.sim_total_secs
    );
    let (v_sync, v_stale) = (sync.best_val_mae(), stale.best_val_mae());
    assert!(
        (v_stale - v_sync).abs() <= 0.5 * v_sync,
        "small-s convergence should stay close: {v_stale} vs {v_sync}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The window's contract, under arbitrary arrival latencies and step
    /// times: every launch applies exactly once, in FIFO order, at an age
    /// that never exceeds the bound.
    #[test]
    fn window_applies_each_launch_once_in_order_within_the_bound(
        bound in 0usize..4,
        steps in proptest::collection::vec((0.0f64..8.0, 0.1f64..3.0), 1..24),
    ) {
        let clock = SimClock::new();
        let mut overlap = OverlapLedger::new();
        let mut w = StalenessWindow::new(bound);
        let mut applied: Vec<(u64, u64)> = Vec::new();
        for (step, &(delay, compute)) in steps.iter().enumerate() {
            let step = step as u64;
            clock.advance_compute(compute);
            let stream = overlap.begin_at(clock.now() + delay, clock.now());
            let buf = w.payload_buf();
            w.launch(step as usize, step, buf, stream);
            let mut hits = Vec::new();
            w.settle(step, &mut overlap, &clock, |bucket, _| hits.push(bucket as u64));
            applied.extend(hits.into_iter().map(|launch| (launch, step)));
        }
        let last = steps.len() as u64 - 1;
        w.flush(&mut overlap, &clock, |bucket, _| applied.push((bucket as u64, last)));
        prop_assert_eq!(w.in_flight(), 0);
        prop_assert_eq!(applied.len(), steps.len(), "each launch applied exactly once");
        for (i, &(launch, settle)) in applied.iter().enumerate() {
            prop_assert_eq!(launch, i as u64, "FIFO application order");
            prop_assert!(
                settle - launch <= bound as u64 || settle == last,
                "age {} exceeds bound {} (flush excepted)", settle - launch, bound
            );
        }
        prop_assert!(w.max_applied_age() <= bound as u64, "settle ages bounded");
    }

    /// `s = 0` over the async machinery is bitwise the quoted synchronous
    /// reduce, whatever clock skew the ranks carry into the collective —
    /// the degenerate window forces every payload to land in its own step.
    #[test]
    fn staleness_zero_matches_the_quoted_path_for_any_clock_skew(
        skews in proptest::collection::vec(0.0f64..5.0, 3..4),
        seed in any::<u32>(),
    ) {
        let out = run_workers(3, ClusterTopology::polaris(), move |mut ctx| {
            let rank = ctx.rank();
            ctx.clock.advance_compute(skews[rank]);
            let grads = |tag: &str| {
                let ps = vec![
                    pgt_i::autograd::Param::new(
                        format!("{tag}.a"),
                        Tensor::zeros([3]),
                    ),
                    pgt_i::autograd::Param::new(
                        format!("{tag}.b"),
                        Tensor::zeros([4]),
                    ),
                ];
                for (i, p) in ps.iter().enumerate() {
                    let v: Vec<f32> = (0..p.numel())
                        .map(|j| {
                            let k = seed
                                .wrapping_mul(2654435761)
                                .wrapping_add((rank * 97 + i * 31 + j) as u32);
                            (k % 1000) as f32 * 0.013 - 6.5
                        })
                        .collect();
                    let n = v.len();
                    p.set_grad(Some(Tensor::from_vec(v, [n]).unwrap()));
                }
                ps
            };
            let sync_ps = grads("sync");
            let mut sync = GradBuckets::new(sync_ps.clone(), 12);
            for i in 0..sync.num_buckets() {
                sync.reduce_bucket_quoted(i, &mut ctx.comm);
            }

            let stale_ps = grads("stale");
            let mut buckets = GradBuckets::new(stale_ps.clone(), 12);
            let mut overlap = OverlapLedger::new();
            let mut w = StalenessWindow::new(0);
            for i in 0..buckets.num_buckets() {
                let ready_at = buckets.reduce_bucket_async(i, &mut ctx.comm);
                let stream = overlap.begin_at(ready_at, ctx.clock.now());
                let mut buf = w.payload_buf();
                buf.extend_from_slice(buckets.bucket_payload(i));
                w.launch(i, 0, buf, stream);
            }
            for p in &stale_ps {
                p.zero_grad();
            }
            w.settle(0, &mut overlap, &ctx.clock, |i, p| buckets.apply_stale(i, p));
            assert_eq!(w.in_flight(), 0, "bound 0 settles in-step");
            assert_eq!(w.max_applied_age(), 0);

            let bits = |ps: &[pgt_i::autograd::Param]| -> Vec<u32> {
                ps.iter()
                    .flat_map(|p| p.grad().unwrap().to_vec())
                    .map(f32::to_bits)
                    .collect()
            };
            (bits(&sync_ps), bits(&stale_ps))
        });
        for (sync, stale) in out {
            prop_assert_eq!(sync, stale, "s = 0 must be bitwise synchronous");
        }
    }
}
