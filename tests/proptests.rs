//! Property-based tests (proptest) on the core invariants:
//! index-batching ≡ sliding-window materialization for arbitrary shapes,
//! shuffle-stripe partition laws, CSR algebra, and the memory formulas.

use pgt_i::core::IndexDataset;
use pgt_i::data::preprocess::{materialized_bytes, materialized_xy, num_snapshots};
use pgt_i::data::signal::StaticGraphTemporalSignal;
use pgt_i::data::splits::SplitRatios;
use pgt_i::dist::shuffle::{contiguous_partition, global_stripe};
use pgt_i::graph::{Adjacency, Csr};
use pgt_i::tensor::Tensor;
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_signal() -> impl Strategy<Value = (StaticGraphTemporalSignal, usize)> {
    // entries 14..60, nodes 1..6, features 1..3, horizon 2..5 with
    // entries > 2*horizon so at least one snapshot exists.
    (2usize..5).prop_flat_map(|horizon| {
        (
            (2 * horizon + 2)..60usize,
            1usize..6,
            1usize..3,
            any::<u32>(),
        )
            .prop_map(move |(entries, nodes, features, seed)| {
                let mut vals = Vec::with_capacity(entries * nodes * features);
                let mut state = seed as u64 | 1;
                for _ in 0..entries * nodes * features {
                    // xorshift for cheap deterministic data
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    vals.push((state % 1000) as f32 / 100.0);
                }
                let adj = Adjacency::from_dense(nodes, vec![1.0; nodes * nodes]);
                let data = Tensor::from_vec(vals, [entries, nodes, features]).unwrap();
                (StaticGraphTemporalSignal::new(data, adj), horizon)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every index-batching snapshot equals its Algorithm-1 counterpart,
    /// for arbitrary entries/nodes/features/horizon.
    #[test]
    fn index_equals_materialized((sig, horizon) in arb_signal()) {
        let out = materialized_xy(&sig, horizon, SplitRatios::default());
        let ds = IndexDataset::from_signal(&sig, horizon, SplitRatios::default(), None);
        prop_assert_eq!(ds.num_snapshots(), out.x.dim(0));
        for i in 0..ds.num_snapshots() {
            let (x, y) = ds.snapshot(i);
            let xi = ds.scaler().inverse(&x);
            let yi = ds.scaler().inverse(&y);
            let xm = out.scaler.inverse(&out.x.select(0, i).unwrap());
            let ym = out.scaler.inverse(&out.y.select(0, i).unwrap());
            prop_assert!(xi.allclose(&xm, 1e-3), "x snapshot {} differs", i);
            prop_assert!(yi.allclose(&ym, 1e-3), "y snapshot {} differs", i);
        }
    }

    /// eq. (1) always equals the true materialized byte count.
    #[test]
    fn eq1_matches_materialization((sig, horizon) in arb_signal()) {
        let out = materialized_xy(&sig, horizon, SplitRatios::default());
        let actual = ((out.x.numel() + out.y.numel()) * 8) as u64;
        let formula = materialized_bytes(
            sig.entries(),
            horizon,
            sig.num_nodes(),
            sig.num_features(),
            8,
        );
        prop_assert_eq!(actual, formula);
    }

    /// Batch assembly equals per-snapshot assembly for arbitrary id sets.
    #[test]
    fn batch_equals_snapshots(
        (sig, horizon) in arb_signal(),
        picks in proptest::collection::vec(0usize..1000, 1..6),
    ) {
        let ds = IndexDataset::from_signal(&sig, horizon, SplitRatios::default(), None);
        let n = ds.num_snapshots();
        let ids: Vec<usize> = picks.into_iter().map(|p| p % n).collect();
        let (bx, by) = ds.batch(&ids);
        for (row, &i) in ids.iter().enumerate() {
            let (x, y) = ds.snapshot(i);
            prop_assert_eq!(bx.select(0, row).unwrap().to_vec(), x.to_vec());
            prop_assert_eq!(by.select(0, row).unwrap().to_vec(), y.to_vec());
        }
    }

    /// Global-stripe shuffling: stripes are disjoint, ragged by at most
    /// one (the first n % world ranks take the extra), inside bounds, and
    /// cover **all** n samples — no dropped permutation tail.
    #[test]
    fn global_stripes_partition(
        n in 8usize..500,
        world in 1usize..9,
        seed in any::<u64>(),
        epoch in 0u64..50,
    ) {
        let mut seen = HashSet::new();
        for rank in 0..world {
            let stripe = global_stripe(n, world, rank, seed, epoch);
            prop_assert_eq!(stripe.len(), contiguous_partition(n, world, rank).len());
            for idx in stripe {
                prop_assert!(idx < n);
                prop_assert!(seen.insert(idx), "duplicate {}", idx);
            }
        }
        prop_assert_eq!(seen.len(), n);
    }

    /// Contiguous partitions tile the range exactly.
    #[test]
    fn partitions_tile(n in 1usize..1000, world in 1usize..17) {
        let mut cursor = 0usize;
        for rank in 0..world {
            let part = contiguous_partition(n, world, rank);
            prop_assert_eq!(part.start, cursor.min(n));
            cursor = part.end;
        }
        prop_assert_eq!(cursor, n);
    }

    /// CSR: dense→sparse→dense roundtrip and spmm ≡ dense matmul.
    #[test]
    fn csr_roundtrip_and_spmm(
        rows in 1usize..8,
        cols in 1usize..8,
        inner in 1usize..5,
        seed in any::<u32>(),
    ) {
        let mut state = seed as u64 | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state.is_multiple_of(3) { 0.0 } else { (state % 100) as f32 / 10.0 }
        };
        let dense: Vec<f32> = (0..rows * cols).map(|_| next()).collect();
        let m = Csr::from_dense(rows, cols, &dense);
        prop_assert_eq!(m.to_dense().to_vec(), dense.clone());

        let x: Vec<f32> = (0..cols * inner).map(|_| next()).collect();
        let xt = Tensor::from_vec(x, [cols, inner]).unwrap();
        let sparse = m.spmm(&xt).unwrap();
        let dense_t = Tensor::from_vec(dense, [rows, cols]).unwrap();
        let reference = pgt_i::tensor::ops::matmul(&dense_t, &xt).unwrap();
        prop_assert!(sparse.allclose(&reference, 1e-4));
    }

    /// num_snapshots formula: consistent with window enumeration.
    #[test]
    fn snapshot_count_formula(entries in 1usize..200, horizon in 1usize..12) {
        let s = num_snapshots(entries, horizon);
        // Count valid window starts directly: x needs [i, i+h), y needs
        // [i+h, i+2h), so i + 2h must not exceed the series.
        let direct = (0..entries)
            .filter(|&i| i + 2 * horizon <= entries)
            .count();
        prop_assert_eq!(s, direct, "formula vs direct window enumeration");
    }
}
