//! Property-based tests for the §7 extension subsystems: graph
//! partitioning laws, checkpoint round-trips, the common-round collective
//! guard, data-distribution policies, and prefetch exposure algebra.

use pgt_i::autograd::{Checkpoint, Param, StateDict};
use pgt_i::dist::datasvc::PartitionPolicy;
use pgt_i::dist::shuffle::{common_rounds, contiguous_partition, range_overlap};
use pgt_i::graph::partition::{halo_nodes, HaloCostModel, MultilevelConfig, Partitioning};
use pgt_i::graph::Adjacency;
use pgt_i::tensor::Tensor;
use proptest::prelude::*;
use std::collections::HashSet;

/// Random sparse adjacency over `n` nodes (ring + random chords so the
/// graph stays connected).
fn arb_adjacency() -> impl Strategy<Value = Adjacency> {
    (4usize..20, any::<u64>()).prop_map(|(n, seed)| {
        let mut w = vec![0.0f32; n * n];
        for i in 0..n {
            w[i * n + (i + 1) % n] = 1.0;
            w[((i + 1) % n) * n + i] = 1.0;
        }
        let mut state = seed | 1;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state % n as u64) as usize;
            let j = ((state >> 16) % n as u64) as usize;
            if i != j {
                w[i * n + j] = 1.0;
            }
        }
        Adjacency::from_dense(n, w)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every partitioner must produce a disjoint cover of all nodes.
    #[test]
    fn partitioners_cover_disjointly(adj in arb_adjacency(), k in 1usize..5) {
        let n = adj.num_nodes();
        let k = k.min(n);
        for p in [
            Partitioning::contiguous(n, k),
            Partitioning::greedy_bfs(&adj, k),
            Partitioning::multilevel(&adj, k),
        ] {
            let mut seen = HashSet::new();
            for part in 0..k {
                for node in p.part_nodes(part) {
                    prop_assert!(seen.insert(node), "node {node} assigned twice");
                }
            }
            prop_assert_eq!(seen.len(), n, "all nodes covered");
        }
    }

    /// Multilevel output is a valid **balanced** partition: all nodes
    /// covered exactly once, no empty part, and every part within the
    /// configured balance tolerance of `⌈n/k⌉` (the rebalance step's cap).
    #[test]
    fn multilevel_is_a_valid_balanced_partition(adj in arb_adjacency(), k in 2usize..6) {
        let n = adj.num_nodes();
        let k = k.min(n);
        let cfg = MultilevelConfig::default();
        let p = Partitioning::multilevel_with(&adj, k, &cfg);
        prop_assert_eq!(p.num_parts(), k);
        let sizes = p.part_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), n, "all nodes covered");
        prop_assert!(sizes.iter().all(|&s| s > 0), "no empty part: {:?}", sizes);
        let cap = ((n.div_ceil(k) as f64) * cfg.balance).ceil() as usize;
        prop_assert!(
            sizes.iter().all(|&s| s <= cap.max(n.div_ceil(k))),
            "sizes {:?} exceed cap {} (n={}, k={})", sizes, cap, n, k
        );
    }

    /// Refinement is monotone in the halo-cost score: the refined run can
    /// never score worse than the unrefined projection it started from
    /// (the finest-level selection keeps the best-scoring snapshot).
    #[test]
    fn multilevel_refinement_never_worsens_halo_cost(adj in arb_adjacency(), k in 2usize..6) {
        let k = k.min(adj.num_nodes());
        let unrefined = Partitioning::multilevel_with(&adj, k, &MultilevelConfig {
            refine_passes: 0,
            ..Default::default()
        });
        let refined = Partitioning::multilevel_with(&adj, k, &MultilevelConfig::default());
        let cost = HaloCostModel::new(12, 2);
        prop_assert!(
            cost.halo_bytes(&adj, &refined) <= cost.halo_bytes(&adj, &unrefined),
            "refined {} > unrefined {}",
            cost.halo_bytes(&adj, &refined),
            cost.halo_bytes(&adj, &unrefined)
        );
    }

    /// The halo cost model is consistent with its own pieces: bytes =
    /// cut_neighbors × (2h − 1) × row_bytes, zero only when nothing is
    /// cut, and monotone in the horizon.
    #[test]
    fn halo_cost_model_algebra(adj in arb_adjacency(), k in 2usize..5, h in 1usize..13) {
        let p = Partitioning::greedy_bfs(&adj, k.min(adj.num_nodes()));
        let cost = HaloCostModel::new(h, 2);
        let bytes = cost.halo_bytes(&adj, &p);
        let replicas = p.cut_neighbors(&adj) as u64;
        prop_assert_eq!(bytes, replicas * (2 * h as u64 - 1) * 8);
        prop_assert_eq!(bytes == 0, replicas == 0);
        let deeper = HaloCostModel::new(h + 1, 2);
        prop_assert!(deeper.halo_bytes(&adj, &p) >= bytes, "monotone in horizon");
    }

    /// The cut fraction is a fraction, and a 1-way "partitioning" cuts
    /// nothing.
    #[test]
    fn cut_fraction_bounds(adj in arb_adjacency(), k in 2usize..5) {
        let n = adj.num_nodes();
        let p = Partitioning::greedy_bfs(&adj, k.min(n));
        let f = p.cut_fraction(&adj);
        prop_assert!((0.0..=1.0).contains(&f), "cut fraction {f}");
        let whole = Partitioning::contiguous(n, 1);
        prop_assert_eq!(whole.cut_fraction(&adj), 0.0);
    }

    /// Halos are monotone in depth, disjoint from the owned set, and the
    /// full-graph owned set has an empty halo.
    #[test]
    fn halo_laws(adj in arb_adjacency(), depth in 0usize..4) {
        let n = adj.num_nodes();
        let owned: Vec<usize> = (0..n / 2).collect();
        let h_d = halo_nodes(&adj, &owned, depth);
        let h_d1 = halo_nodes(&adj, &owned, depth + 1);
        prop_assert!(h_d.len() <= h_d1.len(), "halo monotone in depth");
        prop_assert!(h_d.iter().all(|x| !owned.contains(x)));
        let all: Vec<usize> = (0..n).collect();
        prop_assert!(halo_nodes(&adj, &all, depth).is_empty());
    }

    /// `common_rounds` dominates every rank's own batch count (no rank can
    /// run out of collectives) and is tight (some rank needs all rounds).
    #[test]
    fn common_rounds_dominates_and_is_tight(
        n in 1usize..500, world in 1usize..9, batch in 1usize..17
    ) {
        let per_rank: Vec<usize> =
            (0..world).map(|r| contiguous_partition(n, world, r).len()).collect();
        let rounds = common_rounds(per_rank.clone(), batch);
        for &samples in &per_rank {
            prop_assert!(samples.div_ceil(batch) <= rounds);
        }
        prop_assert!(per_rank.iter().any(|&s| s.div_ceil(batch) == rounds));
    }

    /// Range overlap is symmetric, bounded by both lengths, and exact on
    /// nested ranges.
    #[test]
    fn range_overlap_laws(a in 0usize..50, b in 0usize..50, c in 0usize..50, d in 0usize..50) {
        let r1 = a.min(b)..a.max(b);
        let r2 = c.min(d)..c.max(d);
        let o = range_overlap(&r1, &r2);
        prop_assert_eq!(o, range_overlap(&r2, &r1), "symmetric");
        prop_assert!(o <= r1.len() && o <= r2.len());
        let brute = r1.clone().filter(|x| r2.contains(x)).count();
        prop_assert_eq!(o, brute, "matches brute force");
    }

    /// Every ownership policy assigns every row to a valid rank, and the
    /// contiguous policy matches `contiguous_partition`.
    #[test]
    fn ownership_policies_are_total(rows in 1usize..200, world in 1usize..9) {
        for policy in [PartitionPolicy::Contiguous, PartitionPolicy::Strided] {
            for idx in 0..rows {
                let o = policy.owner_of(idx, rows, world);
                prop_assert!(o < world);
            }
        }
        for rank in 0..world {
            for idx in contiguous_partition(rows, world, rank) {
                prop_assert_eq!(
                    PartitionPolicy::Contiguous.owner_of(idx, rows, world),
                    rank
                );
            }
        }
    }

    /// State dicts round-trip bit-exactly through the binary format for
    /// arbitrary shapes and names.
    #[test]
    fn checkpoint_roundtrip(
        dims in proptest::collection::vec(1usize..5, 1..4),
        seed in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        let numel: usize = dims.iter().product();
        let mut state = seed | 1;
        let vals: Vec<f32> = (0..numel)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                f32::from_bits((state as u32 & 0x3f7f_ffff) | 0x3f00_0000) // finite, sane
            })
            .collect();
        let t = Tensor::from_vec(vals.clone(), dims.clone()).unwrap();
        let p = Param::new("w", t);
        let opt = pgt_i::autograd::optim::Adam::new(vec![p.clone()], 0.01);
        let ck = Checkpoint::capture(&[p], &opt, epoch);
        let restored = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        prop_assert_eq!(restored.epoch, epoch);
        let rt = restored.model.get("0.w").unwrap();
        prop_assert_eq!(rt.to_vec(), vals);
        prop_assert_eq!(rt.dims(), &dims[..]);
    }

    /// Arbitrary state dicts reject truncation at any point (never panic,
    /// never accept).
    #[test]
    fn truncated_checkpoints_rejected(cut_frac in 0.1f64..0.98) {
        let mut d = StateDict::new();
        d.insert("a", Tensor::ones([3, 2]));
        d.insert("b", Tensor::zeros([5]));
        let bytes = d.to_bytes();
        let cut = ((bytes.len() as f64 * cut_frac) as usize).max(1).min(bytes.len() - 1);
        prop_assert!(StateDict::from_bytes(&bytes[..cut]).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pipelined engine's determinism invariant: bucketed gradient
    /// all-reduce (any byte cap, any firing order, any missing-grad
    /// pattern, any world size) equals the single flat all-reduce
    /// **bit-for-bit** — an element-wise rank-order mean cannot observe
    /// how the flat buffer was split.
    #[test]
    fn bucketed_all_reduce_equals_flat(
        shapes in proptest::collection::vec(1usize..24, 1..6),
        cap_words in 1usize..64,
        world in 2usize..5,
        missing in any::<u64>(),
        seed in any::<u32>(),
    ) {
        use pgt_i::dist::launch::run_workers;
        use pgt_i::dist::topology::ClusterTopology;
        use pgt_i::dist::{DdpContext, GradBuckets};

        let shapes = shapes.clone();
        let out = run_workers(world, ClusterTopology::polaris(), move |mut ctx| {
            let rank = ctx.rank();
            let make = |tag: &str| -> Vec<Param> {
                shapes
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| {
                        let p = Param::new(format!("{tag}.{i}"), Tensor::zeros([n]));
                        // Deterministic rank-dependent grads; one bit of
                        // `missing` decides whether this rank skips this
                        // param (an exhausted rank meeting the collective).
                        if missing >> ((rank * shapes.len() + i) % 64) & 1 == 0 {
                            let vals: Vec<f32> = (0..n)
                                .map(|j| {
                                    let h = (seed as u64)
                                        .wrapping_mul(6364136223846793005)
                                        .wrapping_add((rank * 7919 + i * 131 + j) as u64);
                                    ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                                })
                                .collect();
                            p.set_grad(Some(Tensor::from_vec(vals, [n]).unwrap()));
                        }
                        p
                    })
                    .collect()
            };
            let flat_ps = make("flat");
            let mut flat = DdpContext::new(flat_ps.clone());
            flat.average_gradients(&mut ctx.comm);

            let bucket_ps = make("bucket");
            let mut rev = bucket_ps.clone();
            rev.reverse();
            let mut buckets = GradBuckets::new(rev, cap_words * 4);
            for i in 0..buckets.num_buckets() {
                buckets.reduce_bucket_quoted(i, &mut ctx.comm);
            }
            let bits = |ps: &[Param]| -> Vec<u32> {
                ps.iter()
                    .flat_map(|p| p.grad().expect("all params synced").to_vec())
                    .map(f32::to_bits)
                    .collect()
            };
            (bits(&flat_ps), bits(&bucket_ps))
        });
        for (rank, (flat, bucketed)) in out.into_iter().enumerate() {
            prop_assert_eq!(
                flat, bucketed,
                "rank {} diverged (cap {} B, world {})", rank, cap_words * 4, world
            );
        }
    }
}
