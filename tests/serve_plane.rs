//! The production serving plane, end to end: multi-tenant hot-swap with
//! bit-identity to a cold deploy, atomic `Arc` semantics for in-flight
//! workloads, live ingest gating servability, and typed rejections where
//! a panic used to be reachable.

use pgt_i::autograd::Module;
use pgt_i::data::scaler::StandardScaler;
use pgt_i::graph::{diffusion_supports, generators};
use pgt_i::models::{ModelConfig, PgtDcrnn, Support};
use pgt_i::serve::{
    BatchedServer, ModelSnapshot, Query, ServeConfig, ServeError, ShedReason, SnapshotRegistry,
    Tick,
};
use pgt_i::tensor::Tensor;

const NODES: usize = 8;
const HORIZON: usize = 3;

fn model_config() -> ModelConfig {
    ModelConfig {
        input_dim: 1,
        output_dim: 1,
        hidden: 4,
        num_nodes: NODES,
        horizon: HORIZON,
        diffusion_steps: 2,
        layers: 1,
    }
}

/// A (toy) trained snapshot; different seeds stand in for "before" and
/// "after retrain" parameter sets.
fn snapshot(adjacency: &pgt_i::graph::Adjacency, seed: u64) -> ModelSnapshot {
    let cfg = model_config();
    let supports = Support::wrap_all(diffusion_supports(adjacency, cfg.diffusion_steps));
    let trained = PgtDcrnn::new(cfg.clone(), &supports, seed);
    ModelSnapshot::capture(cfg, StandardScaler::identity(), None, &trained.params(), 1)
}

fn corridor() -> pgt_i::graph::Adjacency {
    generators::highway_corridor(NODES, 1, 5).adjacency
}

fn history(rows: usize) -> Tensor {
    Tensor::arange(rows * NODES)
        .reshape([rows, NODES, 1])
        .unwrap()
}

/// Per-node ticks completing stream rows `from..to`, round-robin by row.
fn live_rows(server: &mut BatchedServer, from: usize, to: usize) {
    for t in from..to {
        for node in 0..NODES {
            let completed = server
                .admit_tick(&Tick {
                    node,
                    t,
                    values: vec![(t * NODES + node) as f32 * 0.5],
                })
                .expect("in-order tick");
            assert_eq!(completed, usize::from(node == NODES - 1));
        }
    }
}

fn workload(n: usize, lo_end: usize, hi_end: usize) -> Vec<Query> {
    (0..n)
        .map(|i| Query {
            id: i,
            node: i % NODES,
            window_end: lo_end + i % (hi_end - lo_end + 1),
            arrival_secs: i as f64 * 1e-6,
        })
        .collect()
}

fn assert_bitwise_equal(a: &pgt_i::serve::ServeReport, b: &pgt_i::serve::ServeReport) {
    assert_eq!(a.results.len(), b.results.len());
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.id, rb.id);
        assert_eq!(ra.window_end, rb.window_end);
        for (va, vb) in ra.forecast_std.iter().zip(&rb.forecast_std) {
            assert_eq!(va.to_bits(), vb.to_bits(), "query {}", ra.id);
        }
    }
}

#[test]
fn hot_swap_is_bit_identical_to_a_fresh_deploy_and_in_flight_work_finishes_on_a() {
    let adj = corridor();
    let snap_a = snapshot(&adj, 7);
    let snap_b = snapshot(&adj, 19);
    let cfg = ServeConfig::new(2, 12);
    let queries = workload(32, 18, 24);

    // Tenant deployed on A, live rows 20..24 arriving as per-node ticks.
    let registry = SnapshotRegistry::new();
    registry
        .register(
            "city",
            BatchedServer::with_history(snap_a.clone(), adj.clone(), &history(20), cfg.clone()),
        )
        .unwrap();
    for t in 20..24 {
        for node in 0..NODES {
            registry
                .admit_tick(
                    "city",
                    &Tick {
                        node,
                        t,
                        values: vec![(t * NODES + node) as f32 * 0.5],
                    },
                )
                .unwrap();
        }
    }

    // A mid-workload hot reload: grab the serving Arc first (a workload
    // in flight), then swap the model to B.
    let in_flight = registry.get("city").unwrap();
    let retired = registry.swap_snapshot("city", snap_b.clone()).unwrap();
    assert!(std::sync::Arc::ptr_eq(&in_flight, &retired));

    // Post-swap serving is bitwise a server constructed fresh from B
    // over the same history + ticks.
    let mut fresh_b = BatchedServer::with_history(snap_b, adj.clone(), &history(20), cfg.clone());
    live_rows(&mut fresh_b, 20, 24);
    let post_swap = registry.serve("city", &queries).unwrap();
    assert!(post_swap.rejections.is_empty());
    assert_bitwise_equal(&post_swap, &fresh_b.serve(&queries));

    // The in-flight Arc still serves A's forwards — no torn reads.
    let mut fresh_a = BatchedServer::with_history(snap_a, adj, &history(20), cfg);
    live_rows(&mut fresh_a, 20, 24);
    let on_a = in_flight.serve(&queries);
    assert_bitwise_equal(&on_a, &fresh_a.serve(&queries));

    // And A ≠ B (the swap actually changed the model).
    let a0 = &on_a.results[0].forecast_std;
    let b0 = &post_swap.results[0].forecast_std;
    assert!(
        a0.iter().zip(b0).any(|(x, y)| x.to_bits() != y.to_bits()),
        "distinct snapshots must produce distinct forecasts"
    );
}

#[test]
fn swap_snapshot_rejects_incompatible_snapshots_typed() {
    let adj = corridor();
    let registry = SnapshotRegistry::new();
    registry
        .register(
            "city",
            BatchedServer::with_history(snapshot(&adj, 7), adj.clone(), &history(20), {
                let mut c = ServeConfig::new(1, 12);
                c.capacity = HORIZON; // tightest legal ring
                c
            }),
        )
        .unwrap();

    // Different graph size.
    let other = generators::highway_corridor(NODES + 2, 1, 5).adjacency;
    let big_cfg = ModelConfig {
        num_nodes: NODES + 2,
        ..model_config()
    };
    let supports = Support::wrap_all(diffusion_supports(&other, 2));
    let big = PgtDcrnn::new(big_cfg.clone(), &supports, 3);
    let bad_nodes =
        ModelSnapshot::capture(big_cfg, StandardScaler::identity(), None, &big.params(), 1);
    assert!(matches!(
        registry.swap_snapshot("city", bad_nodes).unwrap_err(),
        ServeError::GraphMismatch {
            snapshot_nodes: 10,
            graph_nodes: NODES
        }
    ));

    // Different scaler than the live ring was standardized with.
    let mut bad_scaler = snapshot(&adj, 7);
    bad_scaler.scaler = StandardScaler::from_feature_stats(vec![(3.0, 2.0)]);
    assert_eq!(
        registry.swap_snapshot("city", bad_scaler).unwrap_err(),
        ServeError::ScalerMismatch
    );

    // Horizon the ring cannot hold.
    let wide_cfg = ModelConfig {
        horizon: HORIZON + 1,
        ..model_config()
    };
    let supports = Support::wrap_all(diffusion_supports(&adj, 2));
    let wide = PgtDcrnn::new(wide_cfg.clone(), &supports, 3);
    let bad_horizon = ModelSnapshot::capture(
        wide_cfg,
        StandardScaler::identity(),
        None,
        &wide.params(),
        1,
    );
    assert_eq!(
        registry.swap_snapshot("city", bad_horizon).unwrap_err(),
        ServeError::CapacityTooSmall {
            capacity: HORIZON,
            horizon: HORIZON + 1
        }
    );

    // The failed swaps left the tenant serving (ring of 3 over 20 rows:
    // only window_end == 20 is still retained).
    assert!(registry
        .serve("city", &workload(4, 20, 20))
        .unwrap()
        .rejections
        .is_empty());
}

#[test]
fn evicted_windows_reject_typed_through_the_full_serve_path() {
    let adj = corridor();
    // Ring of 6 over 20 rows of history: rows < 14 are gone.
    let mut server =
        BatchedServer::with_history(snapshot(&adj, 7), adj, &history(20), ServeConfig::new(2, 6));
    let queries = vec![
        Query {
            id: 0,
            node: 0,
            window_end: 20,
            arrival_secs: 0.0,
        },
        Query {
            id: 1,
            node: 1,
            window_end: 10, // evicted
            arrival_secs: 1e-6,
        },
    ];
    let report = server.serve(&queries);
    assert_eq!(report.results.len(), 1);
    assert_eq!(report.rejections.len(), 1);
    assert_eq!(report.rejections[0].id, 1);
    assert!(matches!(
        report.rejections[0].reason,
        ShedReason::WindowEvicted {
            window_end: 10,
            oldest_retained: 14
        }
    ));
    // The reference path agrees, as a typed error.
    assert!(matches!(
        server.predict_windows(&[10]).unwrap_err(),
        ServeError::WindowEvicted { window_end: 10, .. }
    ));
    // Live ingest moves the eviction boundary forward: window_end 17
    // ([14, 17)) is servable now but falls off once row 20 arrives.
    assert!(server.predict_windows(&[17]).is_ok());
    live_rows(&mut server, 20, 21);
    assert!(matches!(
        server.predict_windows(&[17]).unwrap_err(),
        ServeError::WindowEvicted {
            oldest_retained: 15,
            ..
        }
    ));
}

#[test]
fn a_query_is_servable_only_after_every_node_passes_its_watermark() {
    let adj = corridor();
    let mut server = BatchedServer::with_history(
        snapshot(&adj, 7),
        adj,
        &history(20),
        ServeConfig::new(1, 12),
    );
    let probe = Query {
        id: 9,
        node: 2,
        window_end: 21,
        arrival_secs: 0.0,
    };
    // Every node but the last delivers row 20: the row is staged, not
    // admitted, and the query stays unservable.
    for node in 0..NODES - 1 {
        server
            .admit_tick(&Tick {
                node,
                t: 20,
                values: vec![1.0],
            })
            .unwrap();
    }
    assert_eq!(server.ingest().staged_rows(), 1);
    assert_eq!(server.ingest().frontier(), 20);
    let report = server.serve(&[probe]);
    assert!(matches!(
        report.rejections[0].reason,
        ShedReason::NotYetServable {
            window_end: 21,
            admitted: 20
        }
    ));
    // The straggler delivers; the watermark frontier moves; servable.
    server
        .admit_tick(&Tick {
            node: NODES - 1,
            t: 20,
            values: vec![1.0],
        })
        .unwrap();
    assert_eq!(server.ingest().frontier(), 21);
    let report = server.serve(&[probe]);
    assert_eq!(report.results.len(), 1);
    assert_eq!(report.results[0].id, 9);
}

#[test]
fn tenants_are_isolated_and_each_serves_its_own_model() {
    let adj = corridor();
    let registry = SnapshotRegistry::new();
    let cfg = ServeConfig::new(1, 12);
    registry
        .register(
            "alpha",
            BatchedServer::with_history(snapshot(&adj, 7), adj.clone(), &history(20), cfg.clone()),
        )
        .unwrap();
    registry
        .register(
            "beta",
            BatchedServer::with_history(snapshot(&adj, 19), adj.clone(), &history(20), cfg.clone()),
        )
        .unwrap();
    assert_eq!(
        registry.tenants(),
        vec!["alpha".to_string(), "beta".to_string()]
    );

    let queries = workload(8, 18, 20);
    let a = registry.serve("alpha", &queries).unwrap();
    let b = registry.serve("beta", &queries).unwrap();
    // Same windows, different parameters: forecasts differ…
    assert!(a
        .results
        .iter()
        .zip(&b.results)
        .any(|(x, y)| x.forecast_std[0].to_bits() != y.forecast_std[0].to_bits()));
    // …and ticks to one tenant do not move the other's frontier.
    registry
        .admit_tick(
            "alpha",
            &Tick {
                node: 0,
                t: 20,
                values: vec![0.0],
            },
        )
        .unwrap();
    assert_eq!(registry.get("alpha").unwrap().ingest().watermark(0), 21);
    assert_eq!(registry.get("beta").unwrap().ingest().watermark(0), 20);
}
