//! Integration tests pinning the paper's memory results (the quantities we
//! expect to match *exactly*, per DESIGN.md §7).

use pgt_i::core::memory_model::{
    gpu_index_replay, growth_stages, index_batching_bytes, index_replay,
};
use pgt_i::core::standard_preprocess_bytes;
use pgt_i::data::datasets::{DatasetKind, DatasetSpec};
use pgt_i::data::replay::{standard_replay, LoaderVariant};
use pgt_i::device::memory::{MemPool, PoolMode};
use pgt_i::device::profiler::MemTimeline;
use pgt_i::device::GIB;

fn gib(bytes: u64) -> f64 {
    bytes as f64 / GIB as f64
}

#[test]
fn table1_after_sizes_within_two_percent() {
    let expected: [(DatasetKind, f64); 4] = [
        (DatasetKind::MetrLa, 2.54 * GIB as f64),
        (DatasetKind::PemsBay, 6.05 * GIB as f64),
        (DatasetKind::PemsAllLa, 102.08 * GIB as f64),
        (DatasetKind::Pems, 419.46 * GIB as f64),
    ];
    for (kind, want) in expected {
        let s = DatasetSpec::get(kind);
        let got =
            standard_preprocess_bytes(s.entries, s.horizon, s.nodes, s.aug_features, 8) as f64;
        assert!(
            (got - want).abs() / want < 0.02,
            "{}: {got} vs paper {want}",
            s.name
        );
    }
}

#[test]
fn paper_headline_89_percent_reduction() {
    let s = DatasetSpec::get(DatasetKind::Pems);
    let eq1 = standard_preprocess_bytes(s.entries, s.horizon, s.nodes, s.aug_features, 8);
    let eq2 = index_batching_bytes(s.entries, s.horizon, s.nodes, s.aug_features, 8);
    assert!(1.0 - eq2 as f64 / eq1 as f64 > 0.89);
}

#[test]
fn fig2_oom_matrix() {
    // (dataset, expect_oom): PeMS-All-LA fits, PeMS crashes, both variants.
    for (kind, expect_oom) in [(DatasetKind::PemsAllLa, false), (DatasetKind::Pems, true)] {
        for variant in [LoaderVariant::Pgt, LoaderVariant::DcrnnPadded] {
            let spec = DatasetSpec::get(kind);
            let pool = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
            let mut tl = MemTimeline::new("t");
            let r = standard_replay(&spec, variant, &pool, &mut tl, 8);
            assert_eq!(
                r.oom.is_some(),
                expect_oom,
                "{:?} on {}: oom={:?}",
                variant,
                spec.name,
                r.oom
            );
        }
    }
}

#[test]
fn table2_host_peaks() {
    let spec = DatasetSpec::get(DatasetKind::PemsAllLa);
    let peak = |variant| {
        let pool = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
        let mut tl = MemTimeline::new("t");
        standard_replay(&spec, variant, &pool, &mut tl, 8).peak_bytes
    };
    let pgt = gib(peak(LoaderVariant::Pgt));
    let dcrnn = gib(peak(LoaderVariant::DcrnnPadded));
    assert!((pgt - 259.84).abs() / 259.84 < 0.03, "PGT peak {pgt}");
    assert!((dcrnn - 371.25).abs() / 371.25 < 0.05, "DCRNN peak {dcrnn}");
    assert!(dcrnn > pgt, "the padded loader must cost extra memory");
}

#[test]
fn fig6_and_table4_memory_points() {
    let spec = DatasetSpec::get(DatasetKind::Pems);
    let host = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
    let mut tl = MemTimeline::new("idx");
    let idx = index_replay(&spec, &host, &mut tl, 8);
    assert!(idx.oom.is_none());
    assert!(
        (gib(idx.peak_host) - 45.84).abs() < 3.0,
        "{}",
        gib(idx.peak_host)
    );

    let host = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
    let dev = MemPool::new("gpu", 40 * GIB, PoolMode::Virtual);
    let mut tl = MemTimeline::new("gidx");
    let gidx = gpu_index_replay(&spec, &host, &dev, &mut tl, 8, GIB);
    assert!(gidx.oom.is_none());
    assert!(
        (gib(gidx.peak_host) - 18.20).abs() < 1.5,
        "{}",
        gib(gidx.peak_host)
    );
    assert!(
        (gib(gidx.peak_device) - 18.60).abs() < 1.5,
        "{}",
        gib(gidx.peak_device)
    );
    // §7 conclusion: 60.30% host-memory reduction from GPU-index-batching.
    let reduction = 1.0 - gidx.peak_host as f64 / idx.peak_host as f64;
    assert!(
        (reduction - 0.603).abs() < 0.05,
        "host reduction {reduction}"
    );
}

#[test]
fn fig3_stage_monotonicity_for_all_datasets() {
    for spec in DatasetSpec::all() {
        let g = growth_stages(&spec, 8);
        assert!(g.raw <= g.stage1, "{}", spec.name);
        assert!(g.stage1 < g.stage2, "{}", spec.name);
        assert_eq!(g.stage3, 2 * g.stage2, "{}", spec.name);
        // eq. (1) equals the stage-3 total.
        assert_eq!(
            g.stage3,
            standard_preprocess_bytes(spec.entries, spec.horizon, spec.nodes, spec.aug_features, 8),
            "{}",
            spec.name
        );
    }
}
