//! The serving contract, end to end: train → snapshot → load → serve must
//! be **bit-identical** to the trainer's own evaluation forward pass, on
//! one shard and on a partitioned deployment alike.
//!
//! These tests deliberately cross the process-boundary shape of real
//! deployment: the snapshot is written to disk and read back (fresh
//! parameter tensors, fresh model shell), never sharing live state with
//! the trainer that produced it.

use pgt_i::autograd::optim::Adam;
use pgt_i::autograd::{Checkpoint, Module, Tape};
use pgt_i::core::trainer::{Trainer, TrainerConfig};
use pgt_i::core::IndexDataset;
use pgt_i::data::splits::SplitRatios;
use pgt_i::data::synthetic;
use pgt_i::graph::diffusion_supports;
use pgt_i::models::{ModelConfig, PgtDcrnn, Seq2Seq, Support};
use pgt_i::serve::{
    BatchedServer, ModelSnapshot, Query, QueueConfig, ServeConfig, SnapshotRegistry,
};
use pgt_i::tensor::ops as t;

const HORIZON: usize = 4;

fn setup() -> (PgtDcrnn, IndexDataset, pgt_i::graph::Adjacency, ModelConfig) {
    let net = pgt_i::graph::generators::highway_corridor(12, 1, 23);
    let sig = synthetic::traffic::generate(&net, 160, 288, 23);
    let ds = IndexDataset::from_signal(&sig, HORIZON, SplitRatios::default(), Some(288));
    let cfg = ModelConfig {
        input_dim: ds.num_features(),
        output_dim: 1,
        hidden: 8,
        num_nodes: ds.num_nodes(),
        horizon: HORIZON,
        diffusion_steps: 2,
        layers: 1,
    };
    let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
    (
        PgtDcrnn::new(cfg.clone(), &supports, 31),
        ds,
        net.adjacency,
        cfg,
    )
}

fn train_two_epochs(model: &PgtDcrnn, ds: &IndexDataset) -> Trainer {
    let trainer = Trainer::new(TrainerConfig {
        epochs: 2,
        batch_size: 8,
        validate: false,
        ..Default::default()
    });
    trainer.train(model, ds);
    trainer
}

/// Snapshot to a temp file and load it back — the "fresh process" half of
/// the round trip.
fn disk_roundtrip(snap: &ModelSnapshot, tag: &str) -> ModelSnapshot {
    let path = std::env::temp_dir().join(format!("pgt_serve_roundtrip_{tag}.snap"));
    snap.save(&path).expect("write snapshot");
    let loaded = ModelSnapshot::load(&path).expect("load snapshot");
    std::fs::remove_file(&path).ok();
    loaded
}

#[test]
fn snapshot_serving_is_bit_identical_to_trainer_evaluate_single_rank() {
    let (model, ds, adjacency, mc) = setup();
    let trainer = train_two_epochs(&model, &ds);

    // The trainer-side reference: evaluate's MAE over the val split.
    let val = ds.splits().val.clone();
    let reference_mae = trainer.evaluate(&model, &ds, val.clone());

    // Deployment: capture → disk → load → serve from the same history.
    let snap = ModelSnapshot::capture(mc, ds.scaler().clone(), Some(288), &model.params(), 2);
    let loaded = disk_roundtrip(&snap, "single");
    let server = BatchedServer::with_history(
        loaded,
        adjacency,
        ds.data(),
        ServeConfig::new(1, ds.data().dim(0)),
    );

    // Replay evaluate's exact chunking through the serving forward and
    // re-accumulate its MAE — bit-identical, not approximately equal.
    let ids: Vec<usize> = val.collect();
    let batch = trainer.config().batch_size;
    let replica = server.build_model();
    let mut abs_sum = 0.0f64;
    let mut count = 0usize;
    for chunk in ids.chunks(batch) {
        let (x, y) = ds.batch(chunk);
        let ends: Vec<usize> = chunk.iter().map(|&i| i + HORIZON).collect();
        let served = server
            .predict_windows_with(&replica, &ends)
            .expect("val windows are buffered");

        // The served input windows and forward values are bitwise the
        // trainer's.
        let tape = Tape::new();
        let trained = model.forward(&tape, &x);
        assert_eq!(
            served.to_vec(),
            trained.value().to_vec(),
            "serving forward must be bit-identical to the training forward"
        );

        let target = y.narrow(3, 0, 1).expect("target channel").contiguous();
        let diff = t::sub(&served, &target).expect("same shape");
        abs_sum += t::sum_abs(&diff);
        count += target.numel();
    }
    let served_mae = (abs_sum / count.max(1) as f64) as f32 * ds.scaler().std;
    assert_eq!(
        served_mae.to_bits(),
        reference_mae.to_bits(),
        "served MAE {served_mae} != trainer evaluate {reference_mae}"
    );
}

#[test]
fn snapshot_serving_is_bit_identical_on_two_shards() {
    let (model, ds, adjacency, mc) = setup();
    train_two_epochs(&model, &ds);

    let snap = ModelSnapshot::capture(mc, ds.scaler().clone(), Some(288), &model.params(), 2);
    let loaded = disk_roundtrip(&snap, "sharded");
    let mut cfg = ServeConfig::new(2, ds.data().dim(0));
    cfg.queue = QueueConfig {
        max_batch: 4,
        max_delay_secs: 1e-3,
    };
    // Deployment goes through the production path: a named tenant in the
    // process-wide registry, served via the registry's lookup.
    let registry = SnapshotRegistry::new();
    registry
        .register(
            "corridor",
            BatchedServer::with_history(loaded, adjacency, ds.data(), cfg),
        )
        .expect("fresh tenant name");

    // Every node × a spread of val windows, served through the partitioned
    // micro-batching path.
    let val = ds.splits().val.clone();
    let nodes = ds.num_nodes();
    let queries: Vec<Query> = val
        .clone()
        .step_by(3)
        .enumerate()
        .flat_map(|(k, id)| {
            (0..nodes).map(move |node| Query {
                id: k * nodes + node,
                node,
                window_end: id + HORIZON,
                arrival_secs: (k * nodes + node) as f64 * 1e-6,
            })
        })
        .collect();
    let report = registry
        .serve("corridor", &queries)
        .expect("tenant is registered");
    assert_eq!(report.results.len(), queries.len());
    assert!(report.rejections.is_empty(), "all val windows are buffered");
    assert!(report.halo_bytes > 0, "two shards must exchange halo rows");

    // Each served forecast is bitwise the trainer-side forward for that
    // window and node.
    for r in &report.results {
        let (x, _) = ds.batch(&[r.window_end - HORIZON]);
        let tape = Tape::new();
        let pred = model.forward(&tape, &x);
        for (step, &v) in r.forecast_std.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                pred.value().at(&[0, step, r.node, 0]).to_bits(),
                "query {} node {} step {step}",
                r.id,
                r.node
            );
        }
    }
}

#[test]
fn engine_checkpoint_feeds_the_snapshot_path() {
    // The deployment path from *distributed* training: the engine's
    // checkpoint bytes (model + Adam + epoch) become a serving snapshot —
    // optimizer state dropped, forward values preserved exactly.
    let (model, ds, adjacency, mc) = setup();
    let trainer = train_two_epochs(&model, &ds);
    let opt = Adam::new(model.params(), 0.01);
    let bytes = Checkpoint::capture(&model.params(), &opt, 2).to_bytes();

    let ck = Checkpoint::from_bytes(&bytes).expect("valid checkpoint");
    let snap = ModelSnapshot::from_checkpoint(&ck, mc, ds.scaler().clone(), Some(288));
    assert_eq!(snap.trained_epochs, 2);
    let loaded = disk_roundtrip(&snap, "engine_ck");
    let server = BatchedServer::with_history(
        loaded,
        adjacency,
        ds.data(),
        ServeConfig::new(1, ds.data().dim(0)),
    );

    let val = ds.splits().val.clone();
    let reference = trainer.evaluate(&model, &ds, val.clone());
    let ids: Vec<usize> = val.collect();
    let replica = server.build_model();
    let mut abs_sum = 0.0f64;
    let mut count = 0usize;
    for chunk in ids.chunks(trainer.config().batch_size) {
        let (_, y) = ds.batch(chunk);
        let ends: Vec<usize> = chunk.iter().map(|&i| i + HORIZON).collect();
        let served = server
            .predict_windows_with(&replica, &ends)
            .expect("val windows are buffered");
        let target = y.narrow(3, 0, 1).expect("target channel").contiguous();
        let diff = t::sub(&served, &target).expect("same shape");
        abs_sum += t::sum_abs(&diff);
        count += target.numel();
    }
    let served_mae = (abs_sum / count.max(1) as f64) as f32 * ds.scaler().std;
    assert_eq!(served_mae.to_bits(), reference.to_bits());
}

#[test]
fn corrupted_snapshot_never_serves() {
    let (model, ds, _, mc) = setup();
    let snap = ModelSnapshot::capture(mc, ds.scaler().clone(), Some(288), &model.params(), 2);
    let mut bytes = snap.to_bytes().to_vec();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    assert!(
        ModelSnapshot::from_bytes(&bytes).is_err(),
        "a flipped bit must fail the checksum, not serve wrong forecasts"
    );
}
