//! Cross-crate integration tests: the complete single-GPU workflow from
//! synthetic signal to trained model, exercised through the public API.

use pgt_i::core::workflow::{prepare_single_gpu, Batching};
use pgt_i::core::IndexDataset;
use pgt_i::data::datasets::{DatasetKind, DatasetSpec};
use pgt_i::data::preprocess::materialized_xy;
use pgt_i::data::splits::SplitRatios;
use pgt_i::data::synthetic;

#[test]
fn full_workflow_trains_and_converges() {
    let run = prepare_single_gpu(DatasetKind::ChickenpoxHungary, 0.3, Batching::Index, 12, 9);
    let history = run.train(6, 8, 0.01);
    let first = history.epochs.first().unwrap().train_loss;
    let last = history.epochs.last().unwrap().train_loss;
    assert!(
        last < first,
        "loss must decrease across the workflow: {first} -> {last}"
    );
    assert!(run.test_mae().is_finite());
}

#[test]
fn index_and_standard_batching_agree_end_to_end() {
    // The paper's core equivalence claim through the whole public API:
    // same data, same model seed, both pipelines learn comparably.
    let index = prepare_single_gpu(DatasetKind::WindmillLarge, 0.01, Batching::Index, 12, 5)
        .train(5, 16, 0.01);
    let standard = prepare_single_gpu(DatasetKind::WindmillLarge, 0.01, Batching::Standard, 12, 5)
        .train(5, 16, 0.01);
    let (i, s) = (index.best_val_mae(), standard.best_val_mae());
    assert!(
        (i - s).abs() < 0.3 * i.max(s).max(1e-6),
        "val MAE diverged: index {i} vs standard {s}"
    );
}

#[test]
fn every_domain_generator_feeds_the_workflow() {
    for kind in [
        DatasetKind::ChickenpoxHungary, // epidemiological
        DatasetKind::WindmillLarge,     // energy
        DatasetKind::MetrLa,            // traffic
    ] {
        let run = prepare_single_gpu(kind, 0.02, Batching::Index, 8, 3);
        let h = run.train(2, 8, 0.01);
        assert!(
            h.final_train_loss().is_finite(),
            "{kind:?} failed to produce a finite loss"
        );
    }
}

#[test]
fn snapshot_equivalence_across_public_pipelines() {
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(0.01);
    let sig = synthetic::generate(&spec, 17);
    let aug = sig.with_time_feature(spec.period);
    let materialized = materialized_xy(&aug, spec.horizon, SplitRatios::default());
    let index = IndexDataset::from_signal(
        &sig,
        spec.horizon,
        SplitRatios::default(),
        Some(spec.period),
    );
    assert_eq!(index.num_snapshots(), materialized.x.dim(0));
    // Spot-check a handful of snapshots in raw units.
    for i in (0..index.num_snapshots()).step_by(index.num_snapshots() / 7 + 1) {
        let (x, _) = index.snapshot(i);
        let xi = index.scaler().inverse(&x);
        let xm = materialized
            .scaler
            .inverse(&materialized.x.select(0, i).unwrap());
        assert!(
            xi.allclose(&xm, 1e-3),
            "snapshot {i} differs between pipelines"
        );
    }
}

#[test]
fn signal_io_roundtrip_through_workflow() {
    let spec = DatasetSpec::get(DatasetKind::MetrLa).scaled(0.01);
    let sig = synthetic::generate(&spec, 23);
    let bytes = pgt_i::data::io::to_bytes(&sig);
    let restored = pgt_i::data::io::from_bytes(bytes).expect("roundtrip");
    let ds_a = IndexDataset::from_signal(&sig, spec.horizon, SplitRatios::default(), None);
    let ds_b = IndexDataset::from_signal(&restored, spec.horizon, SplitRatios::default(), None);
    let (xa, ya) = ds_a.batch(&[0, 5]);
    let (xb, yb) = ds_b.batch(&[0, 5]);
    assert_eq!(xa.to_vec(), xb.to_vec());
    assert_eq!(ya.to_vec(), yb.to_vec());
}
