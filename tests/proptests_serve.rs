//! Property-based tests for the serving plane: arbitrary per-node tick
//! interleavings against the `StreamIngest` → `RollingWindow` pipeline
//! (ring invariants, watermark monotonicity, typed-window agreement with
//! a dense reference model, including wrap-around and capacity-1 rings),
//! and arbitrary request streams against the SLO-gated micro-batch queue
//! (no admitted request dropped or duplicated, `max_batch`/`max_delay`
//! respected, every shed request gets a typed rejection and leaves the
//! rest of the schedule untouched).

use pgt_i::data::scaler::StandardScaler;
use pgt_i::device::CostModel;
use pgt_i::serve::{
    admit_and_coalesce, coalesce, BatchCost, IngestError, PendingRequest, QueueConfig,
    RollingWindow, ServeError, ShedReason, SloConfig, StreamIngest, Tick,
};
use proptest::prelude::*;

/// Cheap deterministic stream driver (the shim has no shuffle strategy).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The unique reading node `n` reports at stream time `t`, feature `f`.
fn reading(node: usize, t: usize, f: usize) -> f32 {
    (t * 1000 + node * 10 + f) as f32
}

fn tick(node: usize, t: usize, features: usize) -> Tick {
    Tick {
        node,
        t,
        values: (0..features).map(|f| reading(node, t, f)).collect(),
    }
}

/// Drive `rows` full stream rows through ingest in a seed-determined
/// interleaving, admitting released rows to `window` and appending them
/// to the dense reference; asserts watermark monotonicity and
/// rejection-without-mutation along the way.
fn drive_interleaved(
    ingest: &mut StreamIngest,
    window: &mut RollingWindow,
    dense: &mut Vec<Vec<f32>>,
    rows: usize,
    seed: u64,
) {
    let nodes = window.num_nodes();
    let features = window.num_features();
    let target = ingest.frontier() + rows;
    let mut rng = XorShift(seed | 1);
    let mut next_t: Vec<usize> = (0..nodes).map(|n| ingest.watermark(n)).collect();
    while ingest.frontier() < target {
        let n = (rng.next() % nodes as u64) as usize;
        let t = next_t[n];
        if t >= target {
            continue; // this node already delivered its share
        }
        let wm_before: Vec<usize> = (0..nodes).map(|i| ingest.watermark(i)).collect();
        let staged_before = ingest.staged_rows();
        match ingest.push(&tick(n, t, features)) {
            Ok(released) => {
                next_t[n] = t + 1;
                assert_eq!(ingest.watermark(n), t + 1, "watermark advances by one");
                for row in &released {
                    window.admit(row);
                    dense.push(row.to_vec());
                }
            }
            Err(IngestError::SkewBound { .. }) => {
                // A runaway node: state must be untouched.
                for (i, &wm) in wm_before.iter().enumerate() {
                    assert_eq!(ingest.watermark(i), wm);
                }
                assert_eq!(ingest.staged_rows(), staged_before);
            }
            Err(e) => panic!("unexpected ingest rejection: {e}"),
        }
        // The frontier is always the minimum watermark.
        let min_wm = (0..nodes).map(|i| ingest.watermark(i)).min().unwrap();
        assert_eq!(ingest.frontier(), min_wm);
    }
}

/// Every (end, horizon) classification and window read must agree with
/// the dense reference model of the stream.
fn check_against_dense(window: &RollingWindow, dense: &[Vec<f32>], cap: usize) {
    window.assert_ring_invariants();
    assert_eq!(window.len(), dense.len());
    let len = dense.len();
    let oldest = len.saturating_sub(cap);
    for end in 0..=len + 2 {
        for h in 1..=cap + 1 {
            let status = window.window_status(end, h);
            if h > cap {
                assert_eq!(
                    status,
                    Err(ServeError::BadHorizon {
                        horizon: h,
                        capacity: cap
                    })
                );
            } else if end > len {
                assert!(matches!(status, Err(ServeError::NotYetServable { .. })));
            } else if end < h || end - h < oldest {
                assert!(matches!(status, Err(ServeError::WindowEvicted { .. })));
            } else {
                assert_eq!(status, Ok(()));
                let got = window.window(end, h).unwrap().to_vec();
                let want: Vec<f32> = dense[end - h..end].iter().flatten().copied().collect();
                assert_eq!(got.len(), want.len());
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.to_bits(), b.to_bits(), "window [{}, {end})", end - h);
                }
            }
            assert_eq!(window.contains_window(end, h), status.is_ok());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary tick interleavings (including skew-bound rejections and
    /// wrap-around past capacity — capacity 1 included) leave the ring
    /// bitwise equal to a dense replay of the released rows, with every
    /// window classification agreeing with the dense model.
    #[test]
    fn tick_interleavings_preserve_ring_invariants(
        nodes in 1usize..5,
        features in 1usize..3,
        cap in 1usize..9,
        max_skew in 1usize..5,
        rows in 1usize..28,
        seed in any::<u64>(),
    ) {
        let mut ingest = StreamIngest::new(nodes, features, max_skew);
        let mut window = RollingWindow::new(cap, nodes, features, StandardScaler::identity());
        let mut dense: Vec<Vec<f32>> = Vec::new();
        drive_interleaved(&mut ingest, &mut window, &mut dense, rows, seed);
        prop_assert_eq!(ingest.frontier(), rows);
        check_against_dense(&window, &dense, cap);
    }

    /// Whole-row admission and tick-at-a-time admission of the same
    /// stream produce bitwise identical rings, and the two paths
    /// interlock: whole-row admission is refused while a partial row is
    /// staged.
    #[test]
    fn tick_and_whole_row_admission_agree(
        nodes in 2usize..5,
        cap in 1usize..7,
        rows in 1usize..14,
        seed in any::<u64>(),
    ) {
        let features = 2usize;
        let mut ingest = StreamIngest::new(nodes, features, rows.max(1));
        let mut by_tick = RollingWindow::new(cap, nodes, features, StandardScaler::identity());
        let mut dense: Vec<Vec<f32>> = Vec::new();
        drive_interleaved(&mut ingest, &mut by_tick, &mut dense, rows, seed);

        let mut whole = RollingWindow::new(cap, nodes, features, StandardScaler::identity());
        for row in &dense {
            whole.admit_standardized(row);
        }
        prop_assert_eq!(by_tick.len(), whole.len());
        for end in whole.oldest_retained() + 1..=whole.len() {
            let a = by_tick.window(end, 1).unwrap().to_vec();
            let b = whole.window(end, 1).unwrap().to_vec();
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        // Stage a partial row (only possible with ≥ 2 nodes): the legacy
        // whole-row path must refuse with a typed interlock.
        let t = ingest.frontier();
        ingest.push(&tick(0, t, features)).unwrap();
        prop_assert_eq!(
            ingest.note_full_row().unwrap_err(),
            IngestError::PartialRowsInFlight { staged: 1 }
        );
    }
}

/// An arrival-ordered request stream from a seed: bursty arrivals over a
/// small window-id universe, so batches coalesce, fill, and time out.
fn request_stream(n: usize, seed: u64) -> Vec<PendingRequest> {
    let mut rng = XorShift(seed | 1);
    let mut at = 0.0f64;
    (0..n)
        .map(|id| {
            // Mostly-dense arrivals with occasional long gaps.
            let gap = match rng.next() % 8 {
                0 => 2e-2,
                1..=3 => 2e-3,
                _ => 1e-4,
            };
            at += gap * ((rng.next() % 100) as f64 / 100.0);
            PendingRequest {
                id,
                arrival_secs: at,
                window_end: 50 + (rng.next() % 6) as usize,
            }
        })
        .collect()
}

fn arb_cost(scale_pow: u32, halo: bool) -> BatchCost {
    let cost = CostModel::polaris();
    BatchCost {
        halo_bytes_per_window: if halo { 1 << 16 } else { 0 },
        // Per-window service time from ~14 µs to ~14 ms.
        flops_per_window: cost.gpu_flops * 10f64.powi(scale_pow as i32) * 1e-5,
        cost,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary streams, queue configs, and SLOs: every request
    /// lands in exactly one batch or one typed rejection; batches respect
    /// `max_batch` and `max_delay`; shed requests leave the surviving
    /// schedule exactly equal to the schedule of the stream without them.
    #[test]
    fn admission_control_invariants(
        n in 1usize..70,
        max_batch in 1usize..6,
        delay_kind in 0usize..3,
        deadline_kind in 0usize..4,
        depth in 1usize..9,
        depth_bounded in 0usize..2,
        scale_pow in 0u32..4,
        halo in 0usize..2,
        seed in any::<u64>(),
    ) {
        let rs = request_stream(n, seed);
        let queue = QueueConfig {
            max_batch,
            max_delay_secs: [0.0, 1e-3, 1e-2][delay_kind],
        };
        let slo = SloConfig {
            deadline_secs: [5e-4, 5e-3, 5e-2, f64::INFINITY][deadline_kind],
            max_queue_depth: if depth_bounded == 1 { depth } else { usize::MAX },
        };
        let cost = arb_cost(scale_pow, halo == 1);
        let out = admit_and_coalesce(&rs, &queue, &slo, &cost);

        // Partition: every id in exactly one place, with a typed reason.
        let mut placed = vec![0usize; n];
        for b in &out.batches {
            prop_assert!(b.windows.len() <= max_batch, "max_batch respected");
            prop_assert_eq!(b.requests.len(), b.window_of.len());
            let mut first_arrival = f64::INFINITY;
            for (&id, &slot) in b.requests.iter().zip(&b.window_of) {
                placed[id] += 1;
                // The slot answers the request's window.
                prop_assert_eq!(b.windows[slot], rs[id].window_end);
                first_arrival = first_arrival.min(rs[id].arrival_secs);
                // Nobody dispatches before they arrive.
                prop_assert!(b.dispatch_secs >= rs[id].arrival_secs - 1e-12);
            }
            // max_delay respected: dispatch no later than the opener's
            // timer deadline.
            prop_assert!(
                b.dispatch_secs <= first_arrival + queue.max_delay_secs + 1e-12,
                "dispatch {} > {} + {}", b.dispatch_secs, first_arrival, queue.max_delay_secs
            );
        }
        for s in &out.rejections {
            placed[s.id] += 1;
            match s.reason {
                ShedReason::QueueFull { depth: d } => {
                    prop_assert!(d >= slo.max_queue_depth);
                }
                ShedReason::DeadlineUnmeetable { modeled_completion_secs, deadline_secs } => {
                    prop_assert!(modeled_completion_secs > deadline_secs);
                }
                other => prop_assert!(false, "queue-level shed reason: {:?}", other),
            }
        }
        prop_assert!(placed.iter().all(|&c| c == 1), "exactly-once placement");

        // Shedding leaves no trace: the stream without the shed requests
        // yields the identical schedule, shedding nothing.
        let shed: std::collections::HashSet<usize> =
            out.rejections.iter().map(|s| s.id).collect();
        let survivors: Vec<PendingRequest> =
            rs.iter().filter(|r| !shed.contains(&r.id)).copied().collect();
        let replay = admit_and_coalesce(&survivors, &queue, &slo, &cost);
        prop_assert!(replay.rejections.is_empty(), "survivors all admissible");
        prop_assert_eq!(replay.batches.len(), out.batches.len());
        for (a, b) in replay.batches.iter().zip(&out.batches) {
            prop_assert_eq!(a.dispatch_secs, b.dispatch_secs);
            prop_assert_eq!(&a.requests, &b.requests);
            prop_assert_eq!(&a.windows, &b.windows);
            prop_assert_eq!(&a.window_of, &b.window_of);
        }
    }

    /// With the SLO gates inert, `admit_and_coalesce` is bit-for-bit the
    /// plain `coalesce` schedule.
    #[test]
    fn unbounded_slo_is_plain_coalesce(
        n in 1usize..70,
        max_batch in 1usize..6,
        delay_kind in 0usize..3,
        scale_pow in 0u32..4,
        seed in any::<u64>(),
    ) {
        let rs = request_stream(n, seed);
        let queue = QueueConfig {
            max_batch,
            max_delay_secs: [0.0, 1e-3, 1e-2][delay_kind],
        };
        let cost = arb_cost(scale_pow, true);
        let gated = admit_and_coalesce(&rs, &queue, &SloConfig::unbounded(), &cost);
        let plain = coalesce(&rs, &queue);
        prop_assert!(gated.rejections.is_empty());
        prop_assert_eq!(gated.batches.len(), plain.len());
        for (a, b) in gated.batches.iter().zip(&plain) {
            prop_assert_eq!(a.dispatch_secs, b.dispatch_secs);
            prop_assert_eq!(&a.requests, &b.requests);
            prop_assert_eq!(&a.windows, &b.windows);
            prop_assert_eq!(&a.window_of, &b.window_of);
        }
    }
}
