//! The engine's learning-rate schedule and resume semantics.
//!
//! Historically the engine built `Adam::new(params, effective_lr())` once
//! and never consulted any schedule — the DCRNN multi-step decay only
//! existed on the legacy single-worker `Trainer` path. These tests pin the
//! fix three ways: a scheduled engine run is bit-identical to the legacy
//! `Trainer::train_with_schedule` trajectory, a resumed run re-enters the
//! schedule at the checkpoint's epoch (not the base rate), and degenerate
//! resumes (at/past the horizon, corrupt bytes) surface explicitly instead
//! of panicking or returning silently empty series.

use pgt_i::autograd::optim::Adam;
use pgt_i::autograd::schedule::{LrSchedule, MultiStepLr};
use pgt_i::autograd::Module;
use pgt_i::core::dist_index::DistConfig;
use pgt_i::core::engine::{self, DistDataPlane, EngineError, EngineOptions, Fetch};
use pgt_i::core::index_batching::IndexDataset;
use pgt_i::core::trainer::{Trainer, TrainerConfig};
use pgt_i::data::datasets::{DatasetKind, DatasetSpec};
use pgt_i::data::loader::Batcher;
use pgt_i::data::splits::SplitRatios;
use pgt_i::data::synthetic;
use pgt_i::graph::diffusion_supports;
use pgt_i::models::{ModelConfig, PgtDcrnn, Support};
use std::sync::Arc;

/// A world-of-one plane that replays the legacy `Trainer`'s exact batch
/// order (`Batcher::shuffled` is a different RNG than the engine's global
/// stripe, so parity needs the Trainer's own plan).
struct TrainerOrderPlane {
    ds: IndexDataset,
    batch: usize,
    seed: u64,
}

impl DistDataPlane for TrainerOrderPlane {
    fn rounds_per_epoch(&self) -> usize {
        self.ds.splits().train.len().div_ceil(self.batch)
    }

    fn plan_epoch(&self, epoch: u64) -> Vec<Vec<usize>> {
        let train_ids: Vec<usize> = self.ds.splits().train.clone().collect();
        let batcher = Batcher::shuffled(train_ids, self.batch, self.seed, epoch);
        batcher.batches().map(|b| b.to_vec()).collect()
    }

    fn plan_val(&self) -> Vec<Vec<usize>> {
        Vec::new() // parity is judged on train loss + parameters
    }

    fn fetch_batch(&self, ids: &[usize]) -> Fetch {
        let (x, y) = self.ds.batch(ids);
        Fetch { x, y, secs: 0.0 }
    }

    fn scaler_std(&self) -> f32 {
        self.ds.scaler().std
    }
}

const SEED: u64 = 42;
const LR: f32 = 0.01;
const BATCH: usize = 8;

fn dataset() -> IndexDataset {
    let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.2);
    let sig = synthetic::generate(&spec, 11);
    IndexDataset::from_signal(&sig, spec.horizon, SplitRatios::default(), None)
}

fn model_for(ds: &IndexDataset) -> PgtDcrnn {
    let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.2);
    let sig = synthetic::generate(&spec, 11);
    let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
    let mc = ModelConfig {
        input_dim: ds.num_features(),
        output_dim: 1,
        hidden: 4,
        num_nodes: ds.num_nodes(),
        horizon: ds.horizon(),
        diffusion_steps: 2,
        layers: 1,
    };
    PgtDcrnn::new(mc, &supports, 7)
}

/// DCRNN-style multi-step decay with milestones scaled into a 6-epoch
/// test budget (the reference `MultiStepLr::dcrnn` decays at 20/30/40/50).
fn decay() -> MultiStepLr {
    MultiStepLr {
        base_lr: LR,
        milestones: vec![2, 4],
        gamma: 0.1,
    }
}

fn engine_cfg(epochs: usize) -> DistConfig {
    let mut cfg = DistConfig::new(1, epochs, 4);
    cfg.batch_per_worker = BATCH;
    cfg.lr = LR;
    cfg.seed = SEED;
    // The flat sync path — the Trainer has no bucket machinery to mirror.
    cfg.grad_bucket_bytes = None;
    cfg
}

fn scheduled_opts(epochs: usize) -> EngineOptions {
    let _ = epochs;
    EngineOptions {
        schedule: Some(Arc::new(decay())),
        ..Default::default()
    }
}

fn run_engine(epochs: usize, opts: &EngineOptions) -> (engine::EngineReport, PgtDcrnn) {
    let cfg = engine_cfg(epochs);
    engine::run_single(&cfg, opts, |_cm| {
        let ds = dataset();
        let model = model_for(&ds);
        (
            TrainerOrderPlane {
                ds,
                batch: BATCH,
                seed: SEED,
            },
            model,
        )
    })
    .expect("resume bytes, when present, are valid in these tests")
}

fn param_bits(model: &PgtDcrnn) -> Vec<Vec<u32>> {
    model
        .params()
        .iter()
        .map(|p| p.value().to_vec().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn scheduled_engine_run_matches_the_legacy_trainer_bitwise() {
    // The legacy path: Trainer + explicit optimizer + multi-step decay.
    let ds = dataset();
    let model = model_for(&ds);
    let mut opt = Adam::new(model.params(), LR);
    let trainer = Trainer::new(TrainerConfig {
        epochs: 6,
        batch_size: BATCH,
        lr: LR,
        seed: SEED,
        validate: false,
        grad_clip: Some(5.0),
    });
    let legacy = trainer.train_with_schedule(&model, &ds, &mut opt, &decay());

    // The engine, driving the same batches under the same schedule.
    let (report, engine_model) = run_engine(6, &scheduled_opts(6));

    assert_eq!(report.epochs.len(), legacy.epochs.len());
    for (e, l) in report.epochs.iter().zip(&legacy.epochs) {
        assert_eq!(
            e.train_loss.to_bits(),
            l.train_loss.to_bits(),
            "epoch {}: engine {} vs trainer {}",
            e.epoch,
            e.train_loss,
            l.train_loss
        );
    }
    assert_eq!(
        param_bits(&engine_model),
        param_bits(&model),
        "final parameters must be bit-identical"
    );

    // And the schedule demonstrably took effect: dropping it (the old,
    // buggy behavior — constant effective_lr forever) lands on a
    // different trajectory after the first milestone.
    let (constant, _) = run_engine(6, &EngineOptions::default());
    assert_ne!(
        constant.epochs.last().unwrap().train_loss.to_bits(),
        report.epochs.last().unwrap().train_loss.to_bits(),
        "a decayed rate must diverge from the constant-rate run"
    );
    // Before the first milestone the two runs coincide exactly — the
    // default constant schedule reproduces the legacy numerics.
    for (c, s) in constant.epochs.iter().zip(&report.epochs).take(2) {
        assert_eq!(c.train_loss.to_bits(), s.train_loss.to_bits());
    }
}

#[test]
fn resume_reenters_the_schedule_at_the_checkpoint_epoch() {
    // Interrupt at epoch 3 (past the first milestone, before the second):
    // the resumed run must re-apply lr_at(3) = 0.001, not restart at the
    // 0.01 base rate. Byte-identical final checkpoints prove it.
    let straight = run_engine(
        6,
        &EngineOptions {
            capture_checkpoint: true,
            ..scheduled_opts(6)
        },
    )
    .0;
    let head = run_engine(
        3,
        &EngineOptions {
            capture_checkpoint: true,
            ..scheduled_opts(3)
        },
    )
    .0;
    let resumed = run_engine(
        6,
        &EngineOptions {
            resume: Some(head.checkpoint.clone().expect("captured")),
            capture_checkpoint: true,
            ..scheduled_opts(6)
        },
    )
    .0;
    assert_eq!(
        straight.checkpoint, resumed.checkpoint,
        "resume must continue the schedule, not restart it"
    );
    assert_eq!(resumed.epochs.len(), 3, "only the tail epochs re-run");
    for (r, s) in resumed.epochs.iter().zip(&straight.epochs[3..]) {
        assert_eq!(r.epoch, s.epoch);
        assert_eq!(r.train_loss.to_bits(), s.train_loss.to_bits());
    }
}

#[test]
fn zero_epoch_resume_reports_an_explicit_marker() {
    // Resuming a finished run used to return silently empty series. Now:
    // one explicit NaN marker epoch, and the re-captured checkpoint
    // round-trips byte-identically (nothing trained, nothing rewound).
    let done = run_engine(
        2,
        &EngineOptions {
            capture_checkpoint: true,
            ..Default::default()
        },
    )
    .0;
    let bytes = done.checkpoint.clone().expect("captured");
    let replay = run_engine(
        2,
        &EngineOptions {
            resume: Some(bytes.clone()),
            capture_checkpoint: true,
            ..Default::default()
        },
    )
    .0;
    assert_eq!(replay.epochs.len(), 1, "exactly one marker entry");
    let m = &replay.epochs[0];
    assert_eq!(m.epoch, 2, "marker carries the resume epoch");
    assert!(m.train_loss.is_nan() && m.val_mae.is_nan());
    assert_eq!(m.exposed_comm_secs, 0.0);
    assert_eq!((m.stale_steps_applied, m.fence_stalls), (0, 0));
    assert_eq!(replay.rank_val, vec![vec![(0.0, 0)]]);
    assert_eq!(
        replay.checkpoint,
        Some(bytes),
        "zero-epoch resume must not move or rewind the checkpoint"
    );
}

#[test]
fn corrupt_resume_bytes_surface_a_typed_error() {
    // Truncated checkpoint bytes must come back as Err, not a panic
    // inside a worker thread.
    let done = run_engine(
        1,
        &EngineOptions {
            capture_checkpoint: true,
            ..Default::default()
        },
    )
    .0;
    let mut bytes = done.checkpoint.expect("captured");
    bytes.truncate(bytes.len() / 2);
    let cfg = engine_cfg(2);
    let result = engine::run_single(
        &cfg,
        &EngineOptions {
            resume: Some(bytes),
            ..Default::default()
        },
        |_cm| {
            let ds = dataset();
            let model = model_for(&ds);
            (
                TrainerOrderPlane {
                    ds,
                    batch: BATCH,
                    seed: SEED,
                },
                model,
            )
        },
    );
    match result {
        Err(EngineError::Checkpoint(_)) => {}
        Ok(_) => panic!("corrupt bytes must not restore"),
    }
}

#[test]
fn schedule_lr_at_is_what_the_engine_applies() {
    // Sanity on the schedule arithmetic the tests above lean on.
    let s = decay();
    assert_eq!(s.lr_at(0), 0.01);
    assert_eq!(s.lr_at(2), 0.001);
    assert!((s.lr_at(4) - 0.0001).abs() < 1e-9);
    // And the reference DCRNN milestones stay where the paper's
    // configuration puts them.
    let d = MultiStepLr::dcrnn(0.01);
    assert_eq!(d.lr_at(19), 0.01);
    assert_eq!(d.lr_at(20), 0.001);
}
