//! Cross-crate integration tests for the distributed runtimes: replica
//! consistency, strategy parity, and the communication ledger.

use pgt_i::core::baseline_ddp::run_baseline_ddp;
use pgt_i::core::dist_index::{run_distributed_index, DistConfig};
use pgt_i::core::gen_dist_index::run_generalized;
use pgt_i::core::workflow::pgt_dcrnn_factory;
use pgt_i::data::datasets::{DatasetKind, DatasetSpec};
use pgt_i::data::signal::StaticGraphTemporalSignal;
use pgt_i::data::synthetic;
use pgt_i::dist::shuffle::ShuffleStrategy;
use pgt_i::graph::diffusion_supports;
use pgt_i::models::{ModelConfig, PgtDcrnn, Support};

fn setup() -> (DatasetSpec, StaticGraphTemporalSignal) {
    let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.35);
    (spec.clone(), synthetic::generate(&spec, 13))
}

#[test]
fn dist_index_is_deterministic_across_runs() {
    let (spec, sig) = setup();
    let mut cfg = DistConfig::new(2, 2, spec.horizon);
    cfg.batch_per_worker = 4;
    let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, 42);
    let a = run_distributed_index(&sig, &cfg, &factory);
    let b = run_distributed_index(&sig, &cfg, &factory);
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(
            ea.train_loss, eb.train_loss,
            "replicated run must be identical"
        );
        assert_eq!(ea.val_mae, eb.val_mae);
    }
}

#[test]
fn all_three_distributed_modes_learn_the_same_task() {
    let (spec, sig) = setup();
    let mut cfg = DistConfig::new(2, 3, spec.horizon);
    cfg.batch_per_worker = 4;
    let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, 42);
    let index = run_distributed_index(&sig, &cfg, &factory);
    let gen = run_generalized(&sig, &cfg, &factory);
    let ddp = run_baseline_ddp(&sig, &cfg, |_| {
        let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
        Box::new(PgtDcrnn::new(
            ModelConfig {
                input_dim: 1,
                output_dim: 1,
                hidden: 8,
                num_nodes: sig.num_nodes(),
                horizon: spec.horizon,
                diffusion_steps: 2,
                layers: 1,
            },
            &supports,
            42,
        ))
    });
    for (name, r) in [("index", &index), ("generalized", &gen), ("ddp", &ddp)] {
        let first = r.epochs.first().unwrap().train_loss;
        let last = r.epochs.last().unwrap().train_loss;
        assert!(
            last < first * 1.05,
            "{name}: loss did not trend down ({first} -> {last})"
        );
        assert!(r.best_val_mae().is_finite(), "{name}: no valid val MAE");
    }
}

#[test]
fn communication_ordering_matches_the_papers_fig7_argument() {
    // dist-index (gradients only) < generalized (halo + gradients)
    // << baseline DDP (every batch fetched).
    let (spec, sig) = setup();
    let mut cfg = DistConfig::new(2, 2, spec.horizon);
    cfg.batch_per_worker = 4;
    let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, 42);
    let index = run_distributed_index(&sig, &cfg, &factory);
    let ddp = run_baseline_ddp(&sig, &cfg, |_| {
        let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
        Box::new(PgtDcrnn::new(
            ModelConfig {
                input_dim: 1,
                output_dim: 1,
                hidden: 8,
                num_nodes: sig.num_nodes(),
                horizon: spec.horizon,
                diffusion_steps: 2,
                layers: 1,
            },
            &supports,
            42,
        ))
    });
    assert!(
        ddp.bytes_moved > index.bytes_moved,
        "baseline DDP must move more data: {} vs {}",
        ddp.bytes_moved,
        index.bytes_moved
    );
}

#[test]
fn global_batch_grows_with_workers() {
    let (spec, sig) = setup();
    let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, 42);
    // More workers at fixed per-worker batch ⇒ fewer steps per epoch; the
    // first-epoch loss should be no better (usually worse) with the bigger
    // global batch — the Fig. 8 effect.
    let run = |world: usize| {
        let mut cfg = DistConfig::new(world, 1, spec.horizon);
        cfg.batch_per_worker = 4;
        run_distributed_index(&sig, &cfg, &factory).epochs[0].train_loss
    };
    let small = run(1);
    let large = run(4);
    assert!(
        large >= small * 0.8,
        "4-worker first-epoch loss ({large}) unexpectedly beats 1-worker ({small}) by a lot"
    );
}

#[test]
fn shuffle_strategies_produce_finite_results_at_world_3() {
    let (spec, sig) = setup();
    for strategy in [
        ShuffleStrategy::Global,
        ShuffleStrategy::Local,
        ShuffleStrategy::LocalBatch,
    ] {
        let mut cfg = DistConfig::new(3, 1, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.shuffle = strategy;
        let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, 42);
        let r = run_distributed_index(&sig, &cfg, &factory);
        assert!(r.epochs[0].train_loss.is_finite(), "{strategy:?}");
    }
}

#[test]
fn straggler_noise_never_leaks_into_numerics() {
    // Design invariant: the simulated clock shapes *reported time* only.
    // Injecting per-rank straggler compute noise around every collective
    // must leave training numerics bit-identical — the separation that
    // makes the dual-scale (measured + projected) methodology sound.
    use pgt_i::dist::launch::run_workers;
    use pgt_i::dist::topology::ClusterTopology;

    let run = |straggle: bool| {
        run_workers(3, ClusterTopology::polaris(), move |mut ctx| {
            let mut acc = vec![ctx.rank() as f32 + 0.5; 4];
            for round in 0..5 {
                if straggle {
                    // Rank- and round-dependent virtual slowdown.
                    ctx.clock
                        .advance_compute((ctx.rank() * round) as f64 * 0.37);
                }
                ctx.comm.all_reduce_mean(&mut acc);
                for v in acc.iter_mut() {
                    *v = *v * 1.25 + round as f32;
                }
            }
            (acc, ctx.clock.now())
        })
    };
    let clean = run(false);
    let noisy = run(true);
    for ((va, ta), (vb, tb)) in clean.iter().zip(noisy.iter()) {
        assert_eq!(va, vb, "numerics must not depend on virtual time");
        assert!(tb > ta, "virtual time must reflect the stragglers");
    }
}

#[test]
fn distributed_checkpoint_resume_is_bit_identical() {
    // The distributed extension of the single-worker
    // `checkpoint_resume_reproduces_uninterrupted_run`: a 2-rank engine
    // run interrupted at epoch 2 and resumed must match an uninterrupted
    // 4-epoch run exactly — same final parameters and Adam moments (the
    // captured checkpoints are byte-identical) and the same per-epoch
    // stats for the resumed tail. This requires every rank to restore the
    // same state and to replay the epoch-keyed shuffles from the right
    // epoch.
    use pgt_i::core::dist_index::LocalCopyPlane;
    use pgt_i::core::engine::{self, EngineOptions};

    let (spec, sig) = setup();
    let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, 42);
    let run = |epochs: usize, opts: &EngineOptions| {
        let mut cfg = DistConfig::new(2, epochs, spec.horizon);
        cfg.batch_per_worker = 4;
        engine::run(
            &cfg,
            opts,
            |rank, cm| LocalCopyPlane::new(&sig, &cfg, rank, cm),
            |plane: &LocalCopyPlane| factory(plane.dataset()),
        )
        .expect("checkpoint round-trips")
    };
    let capture = EngineOptions {
        resume: None,
        capture_checkpoint: true,
        ..Default::default()
    };
    let straight = run(4, &capture);
    let interrupted = run(2, &capture);
    let resumed = run(
        4,
        &EngineOptions {
            resume: Some(interrupted.checkpoint.clone().expect("rank-0 checkpoint")),
            capture_checkpoint: true,
            ..Default::default()
        },
    );
    assert_eq!(
        straight.checkpoint, resumed.checkpoint,
        "resumed model + optimizer state must be byte-identical"
    );
    // The resumed run reports exactly the tail epochs of the straight run.
    assert_eq!(resumed.epochs.len(), 2);
    for (r, s) in resumed.epochs.iter().zip(&straight.epochs[2..]) {
        assert_eq!(r.epoch, s.epoch);
        assert_eq!(r.train_loss.to_bits(), s.train_loss.to_bits());
        assert_eq!(r.val_mae.to_bits(), s.val_mae.to_bits());
    }
    // And the first segment reproduced the straight run's head.
    for (i, s) in interrupted.epochs.iter().zip(&straight.epochs[..2]) {
        assert_eq!(i.train_loss.to_bits(), s.train_loss.to_bits());
    }
}

#[test]
fn prefetch_and_policies_compose_with_training() {
    // End-to-end: baseline DDP with prefetching still reaches the same
    // accuracy as the synchronous baseline (bytes identical, time hidden).
    let (spec, sig) = setup();
    let mut cfg = DistConfig::new(2, 2, spec.horizon);
    cfg.batch_per_worker = 4;
    let factory = |_: &pgt_i::core::baseline_ddp::DistributedXy| {
        let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
        let mc = ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 8,
            num_nodes: sig.num_nodes(),
            horizon: spec.horizon,
            diffusion_steps: 2,
            layers: 1,
        };
        Box::new(PgtDcrnn::new(mc, &supports, 42)) as Box<dyn pgt_i::models::Seq2Seq>
    };
    let sync = run_baseline_ddp(&sig, &cfg, factory);
    cfg.prefetch = true;
    let pf = run_baseline_ddp(&sig, &cfg, factory);
    assert_eq!(
        sync.epochs.last().unwrap().train_loss,
        pf.epochs.last().unwrap().train_loss,
        "prefetching must not change learning"
    );
    assert!(pf.sim_total_secs < sync.sim_total_secs);
}
