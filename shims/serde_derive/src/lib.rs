//! No-op derive macros standing in for `serde_derive`. The annotated types
//! never pass through a serde serializer in this workspace, so expanding to
//! nothing is sound — the attribute just needs to resolve.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
