//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `vec(element, len_range)`: generates vectors whose length is uniform in
/// `len_range` and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
