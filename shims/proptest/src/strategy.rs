//! Value-generation strategies: ranges, `any`, tuples, map/flat_map.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies may be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning a wide but sane magnitude range.
        (rng.unit_f64() * 2e6 - 1e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e12 - 1e12
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The default whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_range_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `Just(value)`: always yields a clone of `value`.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
