//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro with an optional `#![proptest_config(..)]`
//! attribute, `Strategy` with `prop_map`/`prop_flat_map`, `any::<T>()`,
//! range strategies, `proptest::collection::vec`, and the `prop_assert*`
//! macros. Cases are generated from a seed derived deterministically from
//! the test path, so runs are reproducible; there is **no shrinking** — a
//! failing case reports its inputs via the panic message only.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// `proptest! { ... }`: expands each `fn name(pat in strategy, ...) { body }`
/// item into a deterministic multi-case test function.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!("proptest {} case {}/{}: {}",
                        stringify!($name), __case + 1, __config.cases, __e);
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{}` == `{}` ({:?} vs {:?})",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)+), __a, __b),
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)`
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{}` != `{}` (both {:?})",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = (0usize..100, any::<u32>());
        let mut a = TestRng::deterministic("x", 3);
        let mut b = TestRng::deterministic("x", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn map_and_flat_map_compose() {
        let s = (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(0usize..10, n..n + 1).prop_map(move |v| (n, v))
        });
        let mut rng = TestRng::deterministic("y", 0);
        for case in 0..50 {
            let _ = case;
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(a in 0usize..50, b in 1usize..50) {
            prop_assert!(a < 50, "a = {}", a);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
