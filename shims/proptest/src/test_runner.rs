//! Configuration, deterministic RNG, and the failure type threaded through
//! `prop_assert*`.

/// Per-`proptest!` configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (no shrinking: carries the message only).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// SplitMix64 seeded from (test path, case index): every run of a given
/// test generates the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
