//! Offline shim for `crossbeam::scope`, backed by `std::thread::scope`.
//!
//! Differences from real crossbeam: a panicking child thread propagates the
//! panic out of `scope` (std semantics) instead of surfacing it through the
//! returned `Result`, so callers' `.expect(..)` never observes `Err`. That is
//! acceptable here — every call site treats a child panic as fatal.

use std::thread;

/// Scope handle passed to spawned closures (crossbeam passes the scope as
/// the closure argument so nested spawns are possible).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which borrowing spawns are allowed; joins all
/// spawned threads before returning.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
