//! Offline shim for the `bytes` crate: `Bytes`, `BytesMut` and the
//! little-endian slice of the `Buf`/`BufMut` traits used by `st_data::io`
//! and `st_autograd::checkpoint`. Cheap clones via `Arc`, like the real
//! crate; no vectored I/O or buffer pooling.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Cursor-style reader over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.remaining()
        );
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }
}

/// Append-style writer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// Sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        *self = &self[n..];
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(0xdead_beef);
        w.put_u16_le(7);
        w.put_u8(3);
        w.put_u64_le(1 << 40);
        w.put_f32_le(1.5);
        w.put_slice(b"hi");
        let mut r = w.freeze();
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.chunk(), b"hi");
    }

    #[test]
    fn slice_shares_storage_and_bounds() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[1, 2]);
    }

    #[test]
    fn slice_buf_impl_advances() {
        let v = [1u8, 0, 0, 0, 9];
        let mut s: &[u8] = &v;
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 9);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }
}
