//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendors just the
//! API surface the workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range`
//! over half-open ranges, and `Rng::gen_bool`. The generator is SplitMix64 —
//! statistically fine for synthetic data generation and fully deterministic,
//! which is all the reproduction needs. It is NOT a drop-in replacement for
//! the real `rand` stream (seeds produce different sequences).

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range(rng: &mut impl RngCore, range: Range<Self>) -> Self;
    fn sample_range_inclusive(rng: &mut impl RngCore, range: RangeInclusive<Self>) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_range(rng, self)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_range_inclusive(rng, self)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut impl RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }

            fn sample_range_inclusive(rng: &mut impl RngCore, range: RangeInclusive<Self>) -> Self {
                let (start, end) = range.into_inner();
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_int!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut impl RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as i64 - range.start as i64) as u64;
                (range.start as i64 + (rng.next_u64() % span) as i64) as $t
            }

            fn sample_range_inclusive(rng: &mut impl RngCore, range: RangeInclusive<Self>) -> Self {
                let (start, end) = range.into_inner();
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i64 - start as i64) as u64 + 1;
                (start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_sample_signed!(i64, i32, i16, i8);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut impl RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                // Derive the unit in f32 space (24 mantissa bits) so it is
                // strictly < 1.0 after any rounding, and clamp the affine
                // map: `start + span * unit` itself can round up to `end`
                // for narrow ranges.
                let unit = (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
                let v = range.start + (range.end - range.start) * unit as $t;
                v.min(range.end.next_down())
            }

            fn sample_range_inclusive(rng: &mut impl RngCore, range: RangeInclusive<Self>) -> Self {
                // Floats: treat inclusive as half-open (measure-zero difference).
                let (start, end) = range.into_inner();
                <$t>::sample_range(rng, start..end)
            }
        }
    )*};
}
impl SampleUniform for f64 {
    fn sample_range(rng: &mut impl RngCore, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = range.start + (range.end - range.start) * unit;
        v.min(range.end.next_down())
    }

    fn sample_range_inclusive(rng: &mut impl RngCore, range: RangeInclusive<Self>) -> Self {
        let (start, end) = range.into_inner();
        f64::sample_range(rng, start..end)
    }
}
impl_sample_float!(f32);

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.2f32..0.2);
            assert!((-0.2..0.2).contains(&f));
            let u = rng.gen_range(5usize..17);
            assert!((5..17).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "hits = {hits}");
    }
}
