//! Offline shim for `serde`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing actually serializes through serde (binary I/O
//! goes through the `bytes`-based formats in `st_data::io` and
//! `st_autograd::checkpoint`). The derives here expand to nothing, and the
//! traits exist so `T: Serialize` bounds would still compile if added.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait SerializeTrait {}

/// Marker stand-in for `serde::Deserialize`.
pub trait DeserializeTrait {}
