//! Offline shim for `criterion`: enough of the API for the `bench_*`
//! targets to build and run as plain timing loops (`cargo bench`). There is
//! no statistical analysis — each benchmark runs a fixed-duration loop and
//! prints mean ns/iter.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for a benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    target: Duration,
    last_report: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            target,
            last_report: None,
        }
    }

    /// Run `f` repeatedly for roughly the target duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.target {
                break;
            }
        }
        self.last_report = Some((iters, start.elapsed()));
    }

    fn report(&self, label: &str) {
        if let Some((iters, elapsed)) = self.last_report {
            let per = elapsed.as_nanos() as f64 / iters.max(1) as f64;
            println!("{label:<40} {per:>14.1} ns/iter ({iters} iters)");
        }
    }
}

fn run_one(label: &str, target: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(target);
    f(&mut b);
    b.report(label);
}

/// Group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    target: Duration,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.target = t;
        self
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, id), self.target, &mut f);
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.target,
            &mut |b| f(b, input),
        );
    }

    pub fn finish(self) {}
}

/// Top-level harness object.
#[derive(Default)]
pub struct Criterion {
    target: Option<Duration>,
}

impl Criterion {
    fn target(&self) -> Duration {
        // Keep the default short: these shim benches are smoke-level timers.
        self.target.unwrap_or(Duration::from_millis(200))
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            target: self.target(),
        }
    }

    pub fn bench_function(&mut self, name: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&name.to_string(), self.target(), &mut f);
    }
}

/// `criterion_group!(name, bench_a, bench_b)` — a function running each
/// benchmark with a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group_a, group_b)` — the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
